package shard

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parcube/internal/agg"
	"parcube/internal/nd"
	"parcube/internal/obs"
	"parcube/internal/server"
)

// Config tunes a Coordinator.
type Config struct {
	// Addrs lists every shard node address. The coordinator discovers
	// which block each serves with the SHARDINFO handshake; within a
	// block, replicas are preferred in Addrs order.
	Addrs []string
	// Timeout bounds each sub-request (and dial) to a shard; a stalled
	// shard surfaces as a timeout and triggers failover. Default 2s.
	Timeout time.Duration
	// Backoff is the wait before the first retry after a failure; it
	// doubles on every subsequent attempt for the same block. Default 10ms.
	Backoff time.Duration
	// Rounds is how many passes over a block's replica list are made
	// before the query fails. Default 2 (every replica gets a second
	// chance after backoff).
	Rounds int
	// RejoinEvery is the probe interval of the background loop that
	// re-admits down replicas after catching them up from a live peer.
	// Default 100ms; negative disables the loop. The loop only starts
	// when the cluster has durable replicas to reconcile.
	RejoinEvery time.Duration
	// Hedge enables hedged reads: when a block has two or more live
	// replicas, a query that has not answered within the hedge delay is
	// reissued to the next replica and the first answer wins, cutting
	// the tail latency a single slow replica would otherwise impose.
	Hedge bool
	// HedgeDelay fixes the hedge delay. Zero derives it from the
	// observed attempt-latency histogram: the p99 once enough samples
	// exist (clamped to [500µs, Timeout/2]), Timeout/16 before that.
	HedgeDelay time.Duration
}

// withDefaults fills unset knobs.
func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Backoff <= 0 {
		c.Backoff = 10 * time.Millisecond
	}
	if c.Rounds <= 0 {
		c.Rounds = 2
	}
	if c.RejoinEvery == 0 {
		c.RejoinEvery = 100 * time.Millisecond
	}
	return c
}

// replica is one shard node serving a block.
type replica struct {
	addr string
	id   int
	pool *pool

	// durable reports whether the node announced a WAL high-water mark
	// (lsn=) in its SHARDINFO handshake; only durable replicas ingest.
	durable bool
	// handshakeLSN is the WAL position announced at handshake (durable
	// replicas only) — it seeds the group's tail-acker set.
	handshakeLSN uint64
	// down marks a replica out of the read and write sets after a write
	// to it failed; the rejoin loop clears it once the replica is caught
	// up. Reads fall back to down replicas only when no live one is left.
	down atomic.Bool
}

// blockGroup is a block and its replicas, preferred in order.
type blockGroup struct {
	block nd.Block
	// reps holds the group's replica list as an immutable snapshot:
	// readers load it lock-free, and membership changes (elastic attach,
	// drain) swap a fresh copy under writeMu. A reader iterating an old
	// snapshot may still talk to a just-drained replica — which keeps
	// serving until its connections wind down, the zero-downtime drain
	// contract.
	reps atomic.Pointer[[]*replica]

	// retired, guarded by writeMu, marks a group replaced by a split
	// cutover: its block is now served by child groups in a newer
	// topology. Ingest that reaches a retired group (through a stale
	// topology snapshot) is refused with errGroupRetired and re-routed by
	// the caller against the current topology; reads need no such check —
	// the group's replicas still hold a complete, consistent copy of the
	// block's history up to the cutover, and the cutover drained every
	// pending write first.
	retired bool

	// writeMu serializes ingest into this block so every replica's WAL
	// assigns identical LSNs to identical deltas (replica lockstep).
	// lastLSN, guarded by it, is the group's acknowledged high-water
	// mark — initialized from the handshake's largest announced lsn.
	writeMu sync.Mutex
	lastLSN uint64
	// tailAckers, guarded by writeMu, names the replicas known to hold
	// the group's tail record with the group's content: the ackers of the
	// last acknowledged write (or, at handshake, the replicas announcing
	// the high-water mark). An unacknowledged write can leave a down
	// replica holding a *different* record at an assigned LSN — lastLSN
	// does not advance, so the next delta reuses the position — which is
	// why rejoin trusts matching LSN positions only for tail ackers and
	// verifies everyone else's tail content against a live peer.
	tailAckers map[string]bool

	// imu guards the group-commit queue: deltas arriving while a commit
	// round's network I/O and fsyncs are in flight queue here, and the
	// round's leader ships them as one DELTABATCH per replica (see
	// ingest.go). ileader is true while some goroutine owns the queue;
	// leadership hands off to the head of the refilled queue after every
	// round, exactly like the WAL's commit-waiter queue.
	imu     sync.Mutex
	iqueue  []*ingestReq
	ileader bool
}

// replicaList returns the group's current replica snapshot.
func (g *blockGroup) replicaList() []*replica {
	if p := g.reps.Load(); p != nil {
		return *p
	}
	return nil
}

// setReplicas publishes a new replica snapshot; membership changes call
// it under writeMu so concurrent cutovers cannot lose each other's
// updates.
func (g *blockGroup) setReplicas(reps []*replica) { g.reps.Store(&reps) }

// topology is one immutable serving-plan snapshot: the epoch and the
// block groups serving under it. Queries and ingest load exactly one
// snapshot per operation; membership changes publish a successor with a
// bumped epoch. Group indices are stable across cutovers — a split
// reuses the parent's slot for its first child and appends the rest — so
// a block index taken from one snapshot still names the same (or an
// enclosing, for the reused parent slot) region in any later one, which
// is what keeps index-keyed cache invalidation sound across the swap
// window.
type topology struct {
	epoch  uint64
	groups []*blockGroup
}

// Coordinator answers the cube line protocol by scatter-gathering shard
// nodes: every query fans out to one owner of each block, partial tables
// merge element-wise under the cube's aggregation operator, and a failed
// or stalled shard fails over to its replicas with exponential backoff.
// It implements server.Backend (plus the Value fast path and STATS
// extension), so server.NewBackend turns it into a drop-in replacement
// for a single-node cube server.
type Coordinator struct {
	cfg   Config
	op    agg.Op
	names []string
	sizes []int

	// top is the serving topology: queries and ingest load one snapshot
	// per operation, membership changes publish a successor under topMu.
	// Lock order: a group's writeMu (when held) comes before topMu.
	top   atomic.Pointer[topology]
	topMu sync.Mutex

	stats *counters

	// ingestHooks are called after every applied delta with the block
	// group it landed in — the query cache's exact invalidation feed.
	// planHooks are called after every topology swap that changed the
	// block-group set (a split cutover), with the new group count.
	hooksMu     sync.RWMutex
	ingestHooks []func(block int)
	planHooks   []func(numBlocks int)

	// retiredReps keeps replicas removed from the serving topology
	// (drained nodes, split parents) alive until Close: in-flight
	// operations on older topology snapshots may still hold their pools.
	retiredMu   sync.Mutex
	retiredReps []*replica

	// rejoin loop lifecycle; stop is nil when the loop never started.
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// groups returns the current topology's block groups.
func (c *Coordinator) groups() []*blockGroup { return c.top.Load().groups }

// NewCoordinator dials every shard, performs the SHARDINFO handshake, and
// assembles the serving topology. It fails if the shards disagree on
// schema or operator, or if their blocks do not tile the schema's array
// exactly.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one shard address")
	}
	c := &Coordinator{cfg: cfg, stats: newCounters()}
	groups := make(map[string]*blockGroup)
	repsOf := make(map[string][]*replica)
	var order []string
	for _, addr := range cfg.Addrs {
		p := newPool(addr, cfg.Timeout)
		cl, err := p.get()
		if err != nil {
			return nil, fmt.Errorf("shard: handshake with %s: %w", addr, err)
		}
		info, err := cl.ShardInfo()
		if err != nil {
			p.discard(cl)
			return nil, fmt.Errorf("shard: handshake with %s: %w", addr, err)
		}
		schema, err := cl.Schema()
		if err != nil {
			p.discard(cl)
			return nil, fmt.Errorf("shard: schema from %s: %w", addr, err)
		}
		p.put(cl)

		op, err := agg.Parse(info["op"])
		if err != nil {
			return nil, fmt.Errorf("shard: %s: %w", addr, err)
		}
		id, err := strconv.Atoi(info["id"])
		if err != nil {
			return nil, fmt.Errorf("shard: %s: malformed shard id %q", addr, info["id"])
		}
		block, err := ParseBlock(info["block"])
		if err != nil {
			return nil, fmt.Errorf("shard: %s: %w", addr, err)
		}
		names, sizes, err := parseSchema(schema)
		if err != nil {
			return nil, fmt.Errorf("shard: %s: %w", addr, err)
		}

		if c.names == nil {
			c.op = op
			c.names = names
			c.sizes = sizes
		} else {
			if op != c.op {
				return nil, fmt.Errorf("shard: %s aggregates with %v, cluster uses %v", addr, op, c.op)
			}
			if !sameSchema(c.names, c.sizes, names, sizes) {
				return nil, fmt.Errorf("shard: %s serves schema %v %v, cluster serves %v %v",
					addr, names, sizes, c.names, c.sizes)
			}
		}
		key := block.String()
		g, ok := groups[key]
		if !ok {
			g = &blockGroup{block: block, tailAckers: make(map[string]bool)}
			groups[key] = g
			order = append(order, key)
		}
		rep := &replica{addr: addr, id: id, pool: p}
		if lsnField, ok := info["lsn"]; ok {
			lsn, err := strconv.ParseUint(lsnField, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("shard: %s: malformed lsn %q", addr, lsnField)
			}
			rep.durable = true
			rep.handshakeLSN = lsn
			if lsn > g.lastLSN {
				g.lastLSN = lsn
			}
		}
		repsOf[key] = append(repsOf[key], rep)
	}
	var serving []*blockGroup
	for _, key := range order {
		g := groups[key]
		g.setReplicas(repsOf[key])
		// Replicas announcing the group high-water mark hold its tail
		// record; peers behind it are caught up (and verified) through the
		// same rejoin path as a mid-run failure before they can diverge.
		for _, rep := range repsOf[key] {
			if rep.durable && rep.handshakeLSN == g.lastLSN {
				g.tailAckers[rep.addr] = true
			}
		}
		serving = append(serving, g)
	}
	c.top.Store(&topology{epoch: 1, groups: serving})
	if err := c.validateTiling(serving); err != nil {
		_ = c.Close() // constructor failed; tiling error is the one to report
		return nil, err
	}
	if cfg.RejoinEvery > 0 && c.anyDurable() {
		c.stop = make(chan struct{})
		c.wg.Add(1)
		go c.rejoinLoop()
	}
	return c, nil
}

// anyDurable reports whether any replica announced a WAL position.
func (c *Coordinator) anyDurable() bool {
	for _, g := range c.groups() {
		for _, r := range g.replicaList() {
			if r.durable {
				return true
			}
		}
	}
	return false
}

// validateTiling checks the given blocks partition the schema's
// array exactly: right rank, in bounds, pairwise disjoint, and jointly
// covering (disjoint + total volume = array volume).
func (c *Coordinator) validateTiling(blocks []*blockGroup) error {
	rank := len(c.sizes)
	total := 1
	for _, s := range c.sizes {
		total *= s
	}
	covered := 0
	for i, g := range blocks {
		if g.block.Rank() != rank {
			return fmt.Errorf("shard: block %s has rank %d, schema has %d", g.block, g.block.Rank(), rank)
		}
		for j := 0; j < rank; j++ {
			if g.block.Lo[j] < 0 || g.block.Hi[j] > c.sizes[j] || g.block.Lo[j] >= g.block.Hi[j] {
				return fmt.Errorf("shard: block %s out of bounds for sizes %v", g.block, c.sizes)
			}
		}
		covered += g.block.Size()
		for _, h := range blocks[i+1:] {
			if blocksOverlap(g.block, h.block) {
				return fmt.Errorf("shard: blocks %s and %s overlap", g.block, h.block)
			}
		}
	}
	if covered != total {
		return fmt.Errorf("shard: blocks cover %d of %d cells — shards missing from the cluster", covered, total)
	}
	return nil
}

// blocksOverlap reports whether two equal-rank blocks intersect.
func blocksOverlap(a, b nd.Block) bool {
	for i := range a.Lo {
		if a.Hi[i] <= b.Lo[i] || b.Hi[i] <= a.Lo[i] {
			return false
		}
	}
	return true
}

// parseSchema splits "name:size" pairs from the SCHEMA reply.
func parseSchema(fields []string) ([]string, []int, error) {
	names := make([]string, 0, len(fields))
	sizes := make([]int, 0, len(fields))
	for _, f := range fields {
		i := strings.LastIndexByte(f, ':')
		if i <= 0 {
			return nil, nil, fmt.Errorf("malformed schema field %q", f)
		}
		n, err := strconv.Atoi(f[i+1:])
		if err != nil {
			return nil, nil, fmt.Errorf("malformed schema field %q", f)
		}
		names = append(names, f[:i])
		sizes = append(sizes, n)
	}
	return names, sizes, nil
}

// sameSchema compares two schemas field-wise.
func sameSchema(an []string, as []int, bn []string, bs []int) bool {
	if len(an) != len(bn) {
		return false
	}
	for i := range an {
		if an[i] != bn[i] || as[i] != bs[i] {
			return false
		}
	}
	return true
}

// Close stops the rejoin loop and releases every pooled connection,
// joining their close errors. Safe to call more than once.
func (c *Coordinator) Close() error {
	c.closeOnce.Do(func() {
		if c.stop != nil {
			close(c.stop)
			c.wg.Wait()
		}
		var errs []error
		for _, g := range c.groups() {
			for _, r := range g.replicaList() {
				if err := r.pool.close(); err != nil {
					errs = append(errs, fmt.Errorf("shard: closing pool for %s: %w", r.addr, err))
				}
			}
		}
		c.retiredMu.Lock()
		retired := c.retiredReps
		c.retiredReps = nil
		c.retiredMu.Unlock()
		for _, r := range retired {
			if err := r.pool.close(); err != nil {
				errs = append(errs, fmt.Errorf("shard: closing pool for retired %s: %w", r.addr, err))
			}
		}
		c.closeErr = errors.Join(errs...)
	})
	return c.closeErr
}

// Stats returns a snapshot of the coordinator's scatter-gather counters.
func (c *Coordinator) Stats() Stats { return c.stats.snapshot() }

// Metrics returns the coordinator's per-instance registry (fan-out and
// failover counters plus ask/merge latency histograms), for export beyond
// the STATS reply — e.g. cubeshard's /debug/vars endpoint.
func (c *Coordinator) Metrics() *obs.Registry { return c.stats.reg }

// StatsFields appends the coordinator's topology and its full metrics
// registry (counters plus ask/merge latency histograms) to the server's
// STATS reply.
func (c *Coordinator) StatsFields() []string {
	topo := c.top.Load()
	replicas := 0
	for _, g := range topo.groups {
		replicas += len(g.replicaList())
	}
	fields := []string{
		fmt.Sprintf("plan_epoch=%d", topo.epoch),
		fmt.Sprintf("blocks=%d", len(topo.groups)),
		fmt.Sprintf("shards=%d", replicas),
	}
	return append(fields, c.stats.reg.Fields()...)
}

// SchemaDims returns the cluster schema discovered at handshake.
func (c *Coordinator) SchemaDims() ([]string, []int) {
	return append([]string(nil), c.names...), append([]int(nil), c.sizes...)
}

// NumBlocks reports how many block groups tile the array.
func (c *Coordinator) NumBlocks() int { return len(c.groups()) }

// Op returns the cluster's aggregation operator, discovered at
// handshake.
func (c *Coordinator) Op() agg.Op { return c.op }

// OnIngest registers fn to run after every delta applied through this
// coordinator, with the index of the block group it landed in. Hooks
// run on the ingest path (once per touched block per delta, after the
// block's replicas acknowledged) and must be fast and non-blocking;
// the query cache subscribes here for exact invalidation.
func (c *Coordinator) OnIngest(fn func(block int)) {
	c.hooksMu.Lock()
	c.ingestHooks = append(c.ingestHooks, fn)
	c.hooksMu.Unlock()
}

// notifyIngest fans one applied-delta event out to the registered
// hooks. The block index is resolved against the CURRENT topology — not
// the snapshot the delta committed under — so a subscriber keyed by
// block index (the query cache) invalidates the slot the group occupies
// now. A group no longer in the topology was retired by a split whose
// plan-change hook already invalidated everything, so its event can be
// dropped.
func (c *Coordinator) notifyIngest(g *blockGroup) {
	c.hooksMu.RLock()
	hooks := c.ingestHooks
	c.hooksMu.RUnlock()
	if len(hooks) == 0 {
		return
	}
	b := -1
	for i, h := range c.groups() {
		if h == g {
			b = i
			break
		}
	}
	if b < 0 {
		return
	}
	for _, fn := range hooks {
		fn(b)
	}
}

// OnPlanChange registers fn to run after every topology cutover that
// changed the block-group set (a split), with the new group count. The
// query cache subscribes here to flush wholesale and resize its
// per-block epoch guards; hooks must be fast and non-blocking.
func (c *Coordinator) OnPlanChange(fn func(numBlocks int)) {
	c.hooksMu.Lock()
	c.planHooks = append(c.planHooks, fn)
	c.hooksMu.Unlock()
}

// notifyPlanChange fans one plan-change event out to the registered
// hooks.
func (c *Coordinator) notifyPlanChange(numBlocks int) {
	c.hooksMu.RLock()
	hooks := c.planHooks
	c.hooksMu.RUnlock()
	for _, fn := range hooks {
		fn(numBlocks)
	}
}

// attempt runs one fetch against one replica over a pooled connection,
// recording its latency in the hedge-delay histogram on success.
func (c *Coordinator) attempt(rep *replica, fetch func(cl *server.Client) (any, error)) (any, error) {
	cl, err := rep.pool.get()
	if err != nil {
		c.stats.errors.Inc()
		return nil, fmt.Errorf("dial %s: %w", rep.addr, err)
	}
	start := time.Now()
	v, err := fetch(cl)
	if err != nil {
		c.stats.errors.Inc()
		rep.pool.discard(cl)
		return nil, fmt.Errorf("%s: %w", rep.addr, err)
	}
	c.stats.attemptNs.ObserveSince(start)
	rep.pool.put(cl)
	return v, nil
}

// hedgeDelay is how long a hedged read waits before reissuing to a
// second replica: the configured HedgeDelay, or — once the attempt
// histogram has enough samples — the observed p99 clamped to
// [500µs, Timeout/2]. Before the histogram warms up it defaults to
// Timeout/16 so cold coordinators still hedge stuck replicas.
func (c *Coordinator) hedgeDelay() time.Duration {
	if c.cfg.HedgeDelay > 0 {
		return c.cfg.HedgeDelay
	}
	snap := c.stats.attemptNs.Snapshot()
	if snap.Count >= 32 {
		d := time.Duration(snap.P99)
		if floor := 500 * time.Microsecond; d < floor {
			d = floor
		}
		if ceil := c.cfg.Timeout / 2; d > ceil {
			d = ceil
		}
		return d
	}
	return c.cfg.Timeout / 16
}

// askHedged races the fetch on the two preferred live replicas: the
// first starts immediately, the second only if the first has not
// answered within the hedge delay, and the first success wins. Fetches
// must be read-only and side-effect free — both may execute. Returns
// ok=false when every launched attempt failed (the caller falls back to
// the sequential ladder).
func (c *Coordinator) askHedged(candidates []*replica, fetch func(cl *server.Client) (any, error)) (any, bool) {
	type result struct {
		v      any
		err    error
		hedged bool
	}
	ch := make(chan result, 2)
	go func() {
		v, err := c.attempt(candidates[0], fetch)
		ch <- result{v, err, false}
	}()
	timer := time.NewTimer(c.hedgeDelay())
	defer timer.Stop()
	launched := 1
	for done := 0; done < launched; {
		select {
		case r := <-ch:
			done++
			if r.err == nil {
				if r.hedged {
					c.stats.hedgeWins.Inc()
				}
				return r.v, true
			}
		case <-timer.C:
			if launched == 1 {
				c.stats.hedgesFired.Inc()
				launched = 2
				go func() {
					v, err := c.attempt(candidates[1], fetch)
					ch <- result{v, err, true}
				}()
			}
		}
	}
	return nil, false
}

// liveCandidates returns the block's replicas not marked down by the
// ingest path; when the whole group is down (or rejoin hasn't caught up
// yet), it falls back to everyone rather than failing without an
// attempt.
func liveCandidates(g *blockGroup) []*replica {
	reps := g.replicaList()
	candidates := make([]*replica, 0, len(reps))
	for _, rep := range reps {
		if !rep.down.Load() {
			candidates = append(candidates, rep)
		}
	}
	if len(candidates) == 0 {
		candidates = reps
	}
	return candidates
}

// askBlock runs fetch against the block's replicas until one answers
// and returns that answer. With hedging enabled and two live replicas
// available, a hedged race runs first; otherwise (and as the fallback
// when both hedge attempts fail) replicas are tried in preference order
// for cfg.Rounds passes, every attempt after the first preceded by an
// exponentially growing backoff. When all attempts fail, the returned
// error names the block, the replicas tried, and the last underlying
// cause.
func (c *Coordinator) askGroup(g *blockGroup, fetch func(cl *server.Client) (any, error)) (any, error) {
	c.stats.fanouts.Inc()
	start := time.Now()
	defer c.stats.askNs.ObserveSince(start)
	if c.cfg.Hedge {
		if live := liveCandidates(g); len(live) >= 2 {
			if v, ok := c.askHedged(live, fetch); ok {
				return v, nil
			}
		}
	}
	var lastErr error
	backoff := c.cfg.Backoff
	attempt := 0
	for round := 0; round < c.cfg.Rounds; round++ {
		for ri, rep := range liveCandidates(g) {
			if attempt > 0 {
				c.stats.retries.Inc()
				time.Sleep(backoff)
				backoff *= 2
			}
			attempt++
			v, err := c.attempt(rep, fetch)
			if err != nil {
				lastErr = err
				continue
			}
			if ri > 0 || round > 0 {
				c.stats.failovers.Inc()
			}
			return v, nil
		}
	}
	reps := g.replicaList()
	addrs := make([]string, len(reps))
	for i, rep := range reps {
		addrs[i] = rep.addr
	}
	return nil, fmt.Errorf("shard: block %s unavailable after %d attempts across replicas %s (last error: %v); partial results discarded",
		g.block, attempt, strings.Join(addrs, ","), lastErr)
}

// scatter runs fetch once per block concurrently (with per-block
// failover and hedging) and collects the per-block answers.
//
//cubelint:hotpath coordinator fan-out, once per distributed query
func (c *Coordinator) scatter(fetch func(b int, cl *server.Client) (any, error)) ([]any, error) {
	groups := c.groups() // one topology snapshot covers the whole fan-out
	vals := make([]any, len(groups))
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for b := range groups {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			vals[b], errs[b] = c.askGroup(groups[b], func(cl *server.Client) (any, error) { return fetch(b, cl) })
		}(b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return vals, nil
}

// gatherRows scatter-gathers one row-streaming request (GROUPBY or QUERY)
// and merges the per-shard tables element-wise under the cluster
// operator. The merged shape is inferred from the first shard's reply and
// cross-checked against the rest.
//
//cubelint:hotpath coordinator gather-merge, once per distributed query
func (c *Coordinator) gatherRows(fetch func(cl *server.Client) ([]server.Row, error)) (server.Result, error) {
	vals, err := c.scatter(func(b int, cl *server.Client) (any, error) {
		return fetch(cl)
	})
	if err != nil {
		return nil, err
	}
	mergeStart := time.Now()
	defer c.stats.mergeNs.ObserveSince(mergeStart)
	shape, err := shapeFromRows(vals[0].([]server.Row))
	if err != nil {
		return nil, err
	}
	tbl := newMergeTable(shape, c.op)
	for _, v := range vals {
		if err := tbl.combineRows(v.([]server.Row), c.op); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// resolveDims validates a dimension list against the schema and returns
// the schema axis of each name.
func (c *Coordinator) resolveDims(dims []string) ([]int, error) {
	axes := make([]int, len(dims))
	seen := make(map[string]bool, len(dims))
	for i, name := range dims {
		if seen[name] {
			return nil, fmt.Errorf("shard: dimension %q repeated", name)
		}
		seen[name] = true
		axis := -1
		for j, n := range c.names {
			if n == name {
				axis = j
				break
			}
		}
		if axis < 0 {
			return nil, fmt.Errorf("shard: unknown dimension %q", name)
		}
		axes[i] = axis
	}
	return axes, nil
}

// GroupBy scatter-gathers the full group-by over the named dimensions.
func (c *Coordinator) GroupBy(dims ...string) (server.Result, error) {
	if _, err := c.resolveDims(dims); err != nil {
		return nil, err
	}
	return c.gatherRows(func(cl *server.Client) ([]server.Row, error) {
		return cl.GroupBy(dims...)
	})
}

// Query scatter-gathers a parcube query-language statement. Statement
// semantics (group-by, slicing, range filters) are coordinate predicates,
// so every shard evaluates the same statement over its disjoint facts and
// the partial tables combine cell-exactly.
func (c *Coordinator) Query(stmt string) (server.Result, error) {
	return c.gatherRows(func(cl *server.Client) ([]server.Row, error) {
		return cl.Query(stmt)
	})
}

// Total scatter-gathers the grand total.
func (c *Coordinator) Total() (float64, error) {
	vals, err := c.scatter(func(b int, cl *server.Client) (any, error) {
		return cl.Total()
	})
	if err != nil {
		return 0, err
	}
	acc := c.op.Identity()
	for _, v := range vals {
		acc = c.op.Combine(acc, v.(float64))
	}
	return acc, nil
}

// BlocksForValue returns (sorted) the indices of the blocks whose
// projection onto the retained dimensions contains the cell — the exact
// fan-out set of a VALUE query, also used by the query cache to
// invalidate point lookups per block group. With no dimensions (the
// grand total) every block contributes.
func (c *Coordinator) BlocksForValue(dims []string, coords []int) ([]int, error) {
	return c.blocksForValueIn(c.groups(), dims, coords)
}

// blocksForValueIn is BlocksForValue against one topology snapshot, so a
// caller fanning a query out can resolve and ask under the same plan.
func (c *Coordinator) blocksForValueIn(groups []*blockGroup, dims []string, coords []int) ([]int, error) {
	if len(dims) == 0 {
		if len(coords) != 0 {
			return nil, fmt.Errorf("shard: grand total takes no coordinates")
		}
		all := make([]int, len(groups))
		for b := range all {
			all[b] = b
		}
		return all, nil
	}
	axes, err := c.resolveDims(dims)
	if err != nil {
		return nil, err
	}
	if len(coords) != len(dims) {
		return nil, fmt.Errorf("shard: %d coordinates for %d dimensions", len(coords), len(dims))
	}
	for i, axis := range axes {
		if coords[i] < 0 || coords[i] >= c.sizes[axis] {
			return nil, fmt.Errorf("shard: coordinate %d out of range [0,%d) for %q",
				coords[i], c.sizes[axis], dims[i])
		}
	}
	owning := make([]int, 0, len(groups))
	for b, g := range groups {
		contains := true
		for i, axis := range axes {
			if coords[i] < g.block.Lo[axis] || coords[i] >= g.block.Hi[axis] {
				contains = false
				break
			}
		}
		if contains {
			owning = append(owning, b)
		}
	}
	sort.Ints(owning)
	return owning, nil
}

// Value answers a single-cell lookup, pruning the fan-out to the blocks
// whose projection onto the retained dimensions contains the cell — the
// payoff of sharding by the planner's block geometry: a point query
// touches only 2^(sum of K over collapsed dimensions) shards.
func (c *Coordinator) Value(dims []string, coords []int) (float64, error) {
	if len(dims) == 0 {
		if len(coords) != 0 {
			return 0, fmt.Errorf("shard: grand total takes no coordinates")
		}
		return c.Total()
	}
	groups := c.groups() // resolve and ask under one topology snapshot
	owning, err := c.blocksForValueIn(groups, dims, coords)
	if err != nil {
		return 0, err
	}

	vals := make([]any, len(owning))
	errs := make([]error, len(owning))
	var wg sync.WaitGroup
	for i, b := range owning {
		wg.Add(1)
		go func(i, b int) {
			defer wg.Done()
			vals[i], errs[i] = c.askGroup(groups[b], func(cl *server.Client) (any, error) {
				return cl.Value(dims, coords)
			})
		}(i, b)
	}
	wg.Wait()
	acc := c.op.Identity()
	for i := range owning {
		if errs[i] != nil {
			return 0, errs[i]
		}
		acc = c.op.Combine(acc, vals[i].(float64))
	}
	return acc, nil
}
