package shard

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"parcube"
	"parcube/internal/agg"
	"parcube/internal/nd"
	"parcube/internal/obs"
	"parcube/internal/recovery"
	"parcube/internal/server"
	"parcube/internal/wal"
)

// DurableOptions configures a shard node's persistence.
type DurableOptions struct {
	// DataDir is the node's data directory: checkpoints at the top level,
	// the write-ahead log under "wal/". Created if missing.
	DataDir string
	// Fsync selects when WAL appends reach stable storage. The default,
	// wal.FsyncAlways, makes every acknowledged delta survive kill -9.
	Fsync wal.FsyncPolicy
	// FsyncEvery is the sync interval under wal.FsyncInterval.
	FsyncEvery time.Duration
	// CheckpointEvery writes a checkpoint after that many ingested
	// deltas; 0 disables auto-checkpointing.
	CheckpointEvery int
	// RetainRecords keeps at least this many newest WAL records across
	// checkpoint trims, so lagging replicas can catch up from this
	// node's log. Default 4096.
	RetainRecords uint64
	// GroupCommit coalesces concurrent WAL appends into one buffered
	// write + one fsync (see wal.Options.GroupCommit). DELTABATCH
	// ingest amortizes the fsync per batch regardless; this knob
	// additionally groups independent single-delta appenders.
	GroupCommit bool
	// CommitWait is the optional leader pause that grows commit groups
	// (see wal.Options.CommitWait). Zero relies on natural batching.
	CommitWait time.Duration
	// Op restates the cube's aggregation operator for dataset-free
	// restarts (StartDurableNode with a nil dataset): checkpoints are
	// opaque and do not embed it. Ignored when a dataset is given. The
	// zero value is parcube.Sum, the library default.
	Op parcube.Aggregator
}

func (o DurableOptions) withDefaults() DurableOptions {
	if o.RetainRecords == 0 {
		o.RetainRecords = 4096
	}
	return o
}

// durableBackend serves a block sub-cube that accepts deltas and
// persists them: apply-then-log, so a delta the cube rejects (schema
// mismatch, out-of-block coordinates, parcube.ErrOverlappingDelta) is
// never written to the WAL and replay of a logged record can never
// fail. The cube is guarded by an RWMutex and every query materializes
// its result into an owned copy before the lock is released — the
// server serializes rows after the backend call returns, and sharing
// the cube's live arrays with a concurrent delta would race.
type durableBackend struct {
	schema *parcube.Schema
	op     parcube.Aggregator
	aop    agg.Op
	block  nd.Block

	mu   sync.RWMutex
	cube *parcube.Cube
	mgr  *recovery.Manager
	// poisoned, once set, rejects every further delta, truncation, and
	// checkpoint until restart. It marks a cube/log divergence this
	// process cannot repair: a delta was applied to the live cube but its
	// WAL append failed, so acking anything on top would acknowledge
	// state a restart cannot reconstruct. Reads stay up (the cube is
	// still internally consistent), and a restart rebuilds cleanly from
	// checkpoint + log, which by construction lack the orphan mutation.
	poisoned error
}

// encodeRows renders delta rows as a WAL record payload: one
// "c0,c1,... value" line per cell, mirroring the wire format.
func encodeRows(rows []server.Row) []byte {
	var b bytes.Buffer
	for _, row := range rows {
		parts := make([]string, len(row.Coords))
		for i, c := range row.Coords {
			parts[i] = strconv.Itoa(c)
		}
		fmt.Fprintf(&b, "%s %g\n", strings.Join(parts, ","), row.Value)
	}
	return b.Bytes()
}

// decodeRows parses a WAL record payload back into delta rows.
func decodeRows(payload []byte) ([]server.Row, error) {
	var rows []server.Row
	for _, line := range strings.Split(strings.TrimSpace(string(payload)), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("shard: malformed logged delta row %q", line)
		}
		var coords []int
		for _, p := range strings.Split(fields[0], ",") {
			c, err := strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("shard: malformed logged coords %q", fields[0])
			}
			coords = append(coords, c)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("shard: malformed logged value %q", fields[1])
		}
		rows = append(rows, server.Row{Coords: coords, Value: v})
	}
	return rows, nil
}

// rowsToDataset validates delta rows against the schema and block and
// builds the dataset to apply. Global coordinates, like every shard
// query path.
func (b *durableBackend) rowsToDataset(rows []server.Row) (*parcube.Dataset, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("shard: empty delta")
	}
	ds := parcube.NewDataset(b.schema)
	rank := b.schema.Dims()
	for _, row := range rows {
		if len(row.Coords) != rank {
			return nil, fmt.Errorf("shard: delta row has %d coordinates, schema has %d dimensions", len(row.Coords), rank)
		}
		for i, c := range row.Coords {
			if c < b.block.Lo[i] || c >= b.block.Hi[i] {
				return nil, fmt.Errorf("shard: delta coordinate %v outside served block %s", row.Coords, b.block)
			}
		}
		if err := ds.Add(row.Value, row.Coords...); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// Delta implements server.DeltaBackend: validate, apply to the live
// cube, then append to the WAL; only then is the delta acknowledged.
//
//cubelint:ignore lock-order b.mu orders log-then-apply; releasing it around the WAL fsync would let a later delta observe unlogged state
func (b *durableBackend) Delta(rows []server.Row, lsn uint64) (uint64, bool, error) {
	ds, err := b.rowsToDataset(rows)
	if err != nil {
		return 0, false, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned != nil {
		return 0, false, b.poisoned
	}
	last := b.mgr.LastLSN()
	switch {
	case lsn == 0:
		lsn = last + 1
	case lsn <= last:
		return lsn, false, nil // idempotent redelivery
	case lsn > last+1:
		return 0, false, fmt.Errorf("shard: delta LSN %d leaves a gap after %d", lsn, last)
	}
	if _, err := b.cube.Update(ds); err != nil {
		// Rejected deltas — parcube.ErrOverlappingDelta above all — are
		// never logged, which is what keeps WAL replay infallible.
		return 0, false, err
	}
	if _, err := b.mgr.AppendAt(lsn, encodeRows(rows)); err != nil {
		// The cube now holds a mutation the log does not. The client never
		// sees an ack for it — but any later acked delta would be computed
		// over (and, for overlap checks, fenced by) the unlogged one, and a
		// restart would replay to a state missing it. Poison the backend:
		// no further delta is acked until a restart rebuilds from durable
		// state alone.
		b.poisoned = fmt.Errorf("shard: delta at LSN %d applied but not logged: %w", lsn, err)
		return 0, false, b.poisoned
	}
	return lsn, true, nil
}

// DeltaBatch implements server.DeltaBatchBackend: apply-then-log over a
// whole run of records, with ONE WAL write + fsync covering every
// record the batch applied. Per-record LSN discipline matches Delta —
// 0 assigns the next position, at-or-below the log skips idempotently,
// a gap rejects — and the first rejected record stops the batch after
// durably logging the applied prefix, so the coordinator's ERR reply
// never races records already acknowledged into the group history.
//
//cubelint:ignore lock-order b.mu orders log-then-apply for the whole batch; the group fsync under it is the atomicity guarantee
func (b *durableBackend) DeltaBatch(recs []server.LoggedDelta) (uint64, int, error) {
	if len(recs) == 0 {
		return 0, 0, fmt.Errorf("shard: empty delta batch")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned != nil {
		return 0, 0, b.poisoned
	}
	last := b.mgr.LastLSN()
	var (
		toLog    []wal.Record
		batchErr error
	)
	for i, rec := range recs {
		lsn := rec.LSN
		switch {
		case lsn == 0:
			lsn = last + 1
		case lsn <= last:
			continue // idempotent redelivery
		case lsn > last+1:
			batchErr = fmt.Errorf("shard: batch record %d: delta LSN %d leaves a gap after %d", i, lsn, last)
		}
		if batchErr != nil {
			break
		}
		ds, err := b.rowsToDataset(rec.Rows)
		if err != nil {
			batchErr = fmt.Errorf("shard: batch record %d: %w", i, err)
			break
		}
		if _, err := b.cube.Update(ds); err != nil {
			// Rejected records are never logged (apply-then-log), so WAL
			// replay stays infallible; the already-applied prefix is
			// logged below before the rejection reaches the client.
			batchErr = fmt.Errorf("shard: batch record %d: %w", i, err)
			break
		}
		toLog = append(toLog, wal.Record{LSN: lsn, Payload: encodeRows(rec.Rows)})
		last = lsn
	}
	applied := 0
	if len(toLog) > 0 {
		n, err := b.mgr.AppendBatchAt(toLog)
		applied = n
		if err != nil {
			// Some applied mutations are not in the log: same divergence as
			// a failed single append. Poison until a restart rebuilds from
			// durable state alone.
			b.poisoned = fmt.Errorf("shard: delta batch applied but only %d of %d records logged: %w", n, len(toLog), err)
			return 0, applied, b.poisoned
		}
	}
	return b.mgr.LastLSN(), applied, batchErr
}

// TruncateTail implements server.TruncateBackend: durably discard every
// logged record above lsn and rebuild the cube from the newest
// checkpoint plus the surviving log. The coordinator invokes it during
// rejoin when this node's newest record was never acknowledged by the
// group (a lost-ack round left it holding an orphan, possibly divergent,
// delta); afterwards normal catch-up resupplies the group's history.
//
//cubelint:ignore lock-order tail truncation rewrites the log and must exclude deltas; its fsync runs under b.mu by design
func (b *durableBackend) TruncateTail(lsn uint64) (uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned != nil {
		return 0, b.poisoned
	}
	if err := b.mgr.Rebuild(lsn); err != nil {
		if errors.Is(err, recovery.ErrBelowCheckpoint) {
			// Nothing was mutated: the target predates the newest
			// checkpoint and the Manager refused up front.
			return 0, err
		}
		// A failed rebuild can leave the cube and log mismatched
		// (truncated log, stale cube). Stop acking until restart.
		b.poisoned = fmt.Errorf("shard: truncate to LSN %d failed: %w", lsn, err)
		return 0, b.poisoned
	}
	return b.mgr.LastLSN(), nil
}

// ExportCheckpoint implements server.CheckpointBackend: publish a fresh
// checkpoint of the live cube and hand out its bytes — the donor side
// of a migration transfer.
//
//cubelint:ignore lock-order the exported snapshot must exclude deltas, so its fsync runs under b.mu by design, same as Checkpoint
func (b *durableBackend) ExportCheckpoint() (uint64, []byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned != nil {
		// Exporting now would ship the unlogged mutation to a new node.
		return 0, nil, b.poisoned
	}
	return b.mgr.ExportCheckpoint()
}

// ImportCheckpoint implements server.CheckpointBackend: adopt shipped
// state as this node's durable base. Only an empty node accepts (the
// recovery manager enforces it). The shipped state may cover a LARGER
// block than this node serves — a split child importing its parent's
// checkpoint — so the cube is rebuilt from the state's fact table
// restricted to the served block; for a same-block replica add the
// restriction passes everything through.
//
//cubelint:ignore lock-order adoption replaces the durable base wholesale and must exclude deltas; its fsyncs run under b.mu by design
func (b *durableBackend) ImportCheckpoint(lsn uint64, state []byte) error {
	cube, err := parcube.ReadCubeStateBlock(bytes.NewReader(state), b.schema, b.op, b.block.Lo, b.block.Hi)
	if err != nil {
		return fmt.Errorf("shard: decoding shipped checkpoint: %w", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned != nil {
		return b.poisoned
	}
	prev := b.cube
	b.cube = cube
	if err := b.mgr.Adopt(lsn); err != nil {
		b.cube = prev
		return err
	}
	return nil
}

// DeltasSince implements server.WALTailBackend by decoding the log tail.
func (b *durableBackend) DeltasSince(lsn uint64) ([]server.LoggedDelta, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []server.LoggedDelta
	err := b.mgr.Replay(lsn, func(rec wal.Record) error {
		rows, err := decodeRows(rec.Payload)
		if err != nil {
			return err
		}
		out = append(out, server.LoggedDelta{LSN: rec.LSN, Rows: rows})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LastLSN implements server.WALTailBackend.
func (b *durableBackend) LastLSN() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.mgr.LastLSN()
}

func (b *durableBackend) SchemaDims() ([]string, []int) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.schema.Names(), b.schema.Sizes()
}

func (b *durableBackend) Total() (float64, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.cube.Total(), nil
}

// copyTable materializes a query result into an owned dense table while
// the read lock is still held, so the server can stream it after the
// lock is gone without racing concurrent deltas.
func copyTable(tbl *parcube.Table, op agg.Op) server.Result {
	out := newMergeTable(tbl.Shape(), op)
	shape := out.shape
	coords := make([]int, len(shape))
	for i := range out.data {
		out.data[i] = tbl.At(coords...)
		for axis := len(coords) - 1; axis >= 0; axis-- {
			coords[axis]++
			if coords[axis] < shape[axis] {
				break
			}
			coords[axis] = 0
		}
	}
	return out
}

func (b *durableBackend) GroupBy(dims ...string) (server.Result, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	tbl, err := b.cube.GroupBy(dims...)
	if err != nil {
		return nil, err
	}
	return copyTable(tbl, b.aop), nil
}

func (b *durableBackend) Query(stmt string) (server.Result, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	tbl, err := b.cube.Query(stmt)
	if err != nil {
		return nil, err
	}
	return copyTable(tbl, b.aop), nil
}

// StartDurableNode starts (or restarts) shard node id backed by a data
// directory. With a dataset the base cube is built from the node's block
// of ds; when the directory already holds a checkpoint, the restored
// state replaces that base and only the WAL tail past the checkpoint is
// replayed. With a nil dataset the node restarts from the directory
// alone — the schema comes from the plan, the operator from
// DurableOptions.Op, and a directory without a valid checkpoint is an
// error. A fresh directory gets an initial checkpoint immediately, so
// later restarts never depend on replaying history from LSN 1.
func StartDurableNode(plan *Plan, id int, ds *parcube.Dataset, addr string, dopts DurableOptions, opts ...parcube.BuildOption) (*Node, error) {
	dopts = dopts.withDefaults()
	if dopts.DataDir == "" {
		return nil, fmt.Errorf("shard: node %d: DurableOptions.DataDir is required", id)
	}
	hadCheckpoint := recovery.HasCheckpoint(dopts.DataDir)
	block, err := plan.BlockOfNode(id)
	if err != nil {
		return nil, err
	}
	var (
		cube *parcube.Cube
		op   parcube.Aggregator
	)
	if ds != nil {
		sub, err := ds.Shard(block.Lo, block.Hi)
		if err != nil {
			return nil, fmt.Errorf("shard: node %d: %w", id, err)
		}
		cube, _, err = parcube.Build(sub, opts...)
		if err != nil {
			return nil, fmt.Errorf("shard: node %d build: %w", id, err)
		}
		op = cube.Aggregator()
	} else {
		if !hadCheckpoint {
			return nil, fmt.Errorf("shard: node %d: no dataset and no checkpoint in %s", id, dopts.DataDir)
		}
		op = dopts.Op
	}

	aop, err := agg.Parse(op.String())
	if err != nil {
		return nil, fmt.Errorf("shard: node %d: %w", id, err)
	}
	var schema *parcube.Schema
	if cube != nil {
		schema = cube.Schema()
	} else if schema, err = plan.Schema(); err != nil {
		return nil, fmt.Errorf("shard: node %d: %w", id, err)
	}
	backend := &durableBackend{
		schema: schema,
		op:     op,
		aop:    aop,
		block:  block,
		cube:   cube,
	}
	metrics := obs.NewRegistry()
	mgr, err := recovery.Open(recovery.Options{
		Dir: dopts.DataDir,
		WAL: wal.Options{
			Fsync:       dopts.Fsync,
			FsyncEvery:  dopts.FsyncEvery,
			GroupCommit: dopts.GroupCommit,
			CommitWait:  dopts.CommitWait,
		},
		CheckpointEvery: dopts.CheckpointEvery,
		RetainRecords:   dopts.RetainRecords,
		Metrics:         metrics,
	},
		func(r io.Reader, lsn uint64) error {
			restored, err := parcube.ReadCubeState(r, backend.schema, backend.op)
			if err != nil {
				return err
			}
			backend.cube = restored
			return nil
		},
		func(lsn uint64, payload []byte) error {
			rows, err := decodeRows(payload)
			if err != nil {
				return err
			}
			rds, err := backend.rowsToDataset(rows)
			if err != nil {
				return err
			}
			_, err = backend.cube.Update(rds)
			return err
		},
		func(w io.Writer) error { return backend.cube.WriteState(w) },
	)
	if err != nil {
		return nil, fmt.Errorf("shard: node %d recovery: %w", id, err)
	}
	backend.mgr = mgr
	// Only a directory that had no checkpoint at all gets the initial one.
	// Gating on CheckpointLSN() == 0 would also fire on a restart whose
	// newest checkpoint is the initial LSN-0 snapshot — and that restart
	// checkpoint, stamped with the recovered LastLSN, would bake an
	// unacked (possibly divergent) tail record into durable state before
	// the coordinator's rejoin reconciliation could truncate it away.
	if !hadCheckpoint {
		if err := mgr.Checkpoint(); err != nil {
			cerr := mgr.Close()
			return nil, errors.Join(fmt.Errorf("shard: node %d initial checkpoint: %w", id, err), cerr)
		}
	}

	n := &Node{
		ID:      id,
		Block:   block,
		Cube:    backend.cube,
		durable: backend,
		rec:     metrics,
		srv:     server.NewBackend(backend),
	}
	n.srv.SetShardInfo(server.ShardInfo{
		ID:    id,
		Op:    backend.op.String(),
		Block: block.String(),
		Epoch: plan.Epoch,
	})
	bound, err := n.srv.Listen(addr)
	if err != nil {
		cerr := mgr.Close()
		return nil, errors.Join(fmt.Errorf("shard: node %d listen: %w", id, err), cerr)
	}
	n.addr = bound
	return n, nil
}

// LastLSN returns a durable node's newest acknowledged-delta LSN (0 for
// in-memory nodes).
func (n *Node) LastLSN() uint64 {
	if n.durable == nil {
		return 0
	}
	return n.durable.LastLSN()
}

// Checkpoint forces a durable node to checkpoint now.
//
//cubelint:ignore lock-order the checkpoint snapshot must exclude deltas, so its fsync runs under the backend lock by design
func (n *Node) Checkpoint() error {
	if n.durable == nil {
		return fmt.Errorf("shard: node %d has no data directory", n.ID)
	}
	n.durable.mu.Lock()
	defer n.durable.mu.Unlock()
	if n.durable.poisoned != nil {
		// A checkpoint taken now would bake the unlogged mutation into a
		// snapshot stamped with a lower LSN, making the divergence durable.
		return n.durable.poisoned
	}
	return n.durable.mgr.Checkpoint()
}

// RecoveryMetrics returns a durable node's recovery registry (replayed
// records, replay/checkpoint latency, log lag); nil for in-memory nodes.
func (n *Node) RecoveryMetrics() *obs.Registry { return n.rec }

// Crash simulates kill -9: the listener and every connection drop, and
// nothing buffered is flushed to the data directory. Only deltas the
// fsync policy already persisted survive a subsequent StartDurableNode.
func (n *Node) Crash() {
	_ = n.srv.Close()
	if n.durable != nil {
		n.durable.mu.Lock()
		n.durable.mgr.Crash()
		n.durable.mu.Unlock()
	}
}
