package shard

import (
	"strings"
	"testing"
	"time"

	"parcube"
	"parcube/internal/server"
	"parcube/internal/wal"
)

// durableCluster is a loopback cluster of persistent shard nodes plus an
// ingesting coordinator and its protocol server.
type durableCluster struct {
	plan  *Plan
	nodes []*Node
	dirs  []string
	dopts DurableOptions
	coord *Coordinator
	srv   *server.Server
	addr  string
}

// startDurableCluster boots `nodes` durable shard servers (fsync on every
// append, so Crash loses nothing acknowledged) and a rejoin-enabled
// coordinator serving the line protocol on loopback TCP.
func startDurableCluster(t *testing.T, ds *parcube.Dataset, nodes, replicas int) *durableCluster {
	t.Helper()
	return startDurableClusterCfg(t, ds, nodes, replicas, nil)
}

// startDurableClusterCfg is startDurableCluster with a coordinator
// Config hook, so tests can flip serving-path options (hedging, custom
// timeouts) on an otherwise standard durable cluster.
func startDurableClusterCfg(t *testing.T, ds *parcube.Dataset, nodes, replicas int, mutate func(*Config)) *durableCluster {
	t.Helper()
	names := ds.Schema().Names()
	sizes := ds.Schema().Sizes()
	plan, err := NewPlan(names, sizes, nodes, replicas)
	if err != nil {
		t.Fatal(err)
	}
	dc := &durableCluster{
		plan:  plan,
		dopts: DurableOptions{Fsync: wal.FsyncAlways, CheckpointEvery: 4},
	}
	for i := 0; i < nodes; i++ {
		dir := t.TempDir()
		dopts := dc.dopts
		dopts.DataDir = dir
		n, err := StartDurableNode(plan, i, ds, "127.0.0.1:0", dopts)
		if err != nil {
			t.Fatal(err)
		}
		dc.dirs = append(dc.dirs, dir)
		dc.nodes = append(dc.nodes, n)
	}
	t.Cleanup(func() {
		// Nodes may have been crashed and replaced; close whatever the
		// test left in the slots (Close after Crash is a no-op).
		for _, n := range dc.nodes {
			_ = n.Close()
		}
	})
	addrs := make([]string, len(dc.nodes))
	for i, n := range dc.nodes {
		addrs[i] = n.Addr()
	}
	cfg := Config{
		Addrs:       addrs,
		Timeout:     2 * time.Second,
		Backoff:     time.Millisecond,
		Rounds:      4,
		RejoinEvery: 5 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	dc.coord, err = NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dc.coord.Close() })
	dc.srv = server.NewBackend(dc.coord)
	dc.srv.ReadTimeout = 10 * time.Second
	dc.srv.WriteTimeout = 10 * time.Second
	dc.addr, err = dc.srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dc.srv.Close() })
	return dc
}

// restartNode brings node id back from its data directory on its original
// address, retrying the rebind until the dead socket is torn down.
func (dc *durableCluster) restartNode(t *testing.T, id int) {
	t.Helper()
	dopts := dc.dopts
	dopts.DataDir = dc.dirs[id]
	addr := dc.nodes[id].Addr()
	n, err := StartDurableNode(dc.plan, id, nil, addr, dopts)
	for attempt := 0; err != nil && attempt < 200; attempt++ {
		time.Sleep(5 * time.Millisecond)
		n, err = StartDurableNode(dc.plan, id, nil, addr, dopts)
	}
	if err != nil {
		t.Fatalf("restart node %d on %s: %v", id, addr, err)
	}
	dc.nodes[id] = n
}

// blockCell returns the i-th distinct cell (global coordinates) inside a
// block, walking the block's box in row-major order.
func blockCell(b *Node, i int) []int {
	coords := make([]int, len(b.Block.Lo))
	for j := len(coords) - 1; j >= 0; j-- {
		w := b.Block.Hi[j] - b.Block.Lo[j]
		coords[j] = b.Block.Lo[j] + i%w
		i /= w
	}
	return coords
}

// applyRef applies a delta to the reference cube through the same Update
// path the shards use.
func applyRef(t *testing.T, ref *parcube.Cube, rows []server.Row) {
	t.Helper()
	ds := parcube.NewDataset(ref.Schema())
	for _, r := range rows {
		if err := ds.Add(r.Value, r.Coords...); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ref.Update(ds); err != nil {
		t.Fatal(err)
	}
}

// waitRejoins polls the coordinator until its rejoin counter reaches want.
func waitRejoins(t *testing.T, c *Coordinator, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.Stats().Rejoins >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("rejoins stuck at %d, want at least %d (stats %+v)", c.Stats().Rejoins, want, c.Stats())
}

// assertCoordMatches checks the coordinator's total and a 2-D group-by
// cell-for-cell against the reference cube.
func assertCoordMatches(t *testing.T, c *Coordinator, ref *parcube.Cube, when string) {
	t.Helper()
	total, err := c.Total()
	if err != nil {
		t.Fatalf("%s: TOTAL: %v", when, err)
	}
	if want := ref.Total(); total != want {
		t.Fatalf("%s: TOTAL = %v, want %v (acked deltas lost or double-applied)", when, total, want)
	}
	got, err := c.GroupBy("item", "region")
	if err != nil {
		t.Fatalf("%s: GROUPBY: %v", when, err)
	}
	want, err := ref.GroupBy("item", "region")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 4; j++ {
			if g, w := got.At(i, j), want.At(i, j); g != w {
				t.Fatalf("%s: cell (%d,%d) = %v, want %v", when, i, j, g, w)
			}
		}
	}
}

// TestDurableClusterIngestOverProtocol drives DELTA through the
// coordinator's own protocol server: the client's acknowledged deltas
// must show up, cell-exactly, in every query shape.
func TestDurableClusterIngestOverProtocol(t *testing.T) {
	ds, ref := test4D(t)
	dc := startDurableCluster(t, ds, 4, 2)

	cl, err := server.Dial(dc.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 6; i++ {
		rows := []server.Row{
			{Coords: blockCell(dc.nodes[0], i), Value: float64(i + 1)},
			{Coords: blockCell(dc.nodes[1], i), Value: float64(10 * (i + 1))},
		}
		lsn, err := cl.Delta(rows)
		if err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("delta %d acked at LSN %d, want %d", i, lsn, i+1)
		}
		applyRef(t, ref, rows)
	}
	assertClusterMatchesCube(t, dc.addr, ref)

	s := dc.coord.Stats()
	if s.Deltas != 6 || s.DeltaCells != 12 {
		t.Fatalf("ingest stats %+v, want 6 deltas / 12 cells", s)
	}
	// Both replicas of block 0 logged identical records at identical LSNs.
	if a, b := dc.nodes[0].LastLSN(), dc.nodes[2].LastLSN(); a != b || a != 6 {
		t.Fatalf("block 0 replicas at LSNs %d and %d, want lockstep at 6", a, b)
	}
}

// TestDurableKillNineRejoin is the crash acceptance test: kill -9 one
// replica mid-stream, keep ingesting through its peer, bring it back
// from its data directory, and verify the rejoin protocol returns it to
// service with every acknowledged delta intact — proven by killing the
// peer afterwards so only the rejoined replica can answer for the block.
func TestDurableKillNineRejoin(t *testing.T) {
	ds, ref := test4D(t)
	dc := startDurableCluster(t, ds, 4, 2)

	ingest := func(i int, value float64) {
		t.Helper()
		rows := []server.Row{{Coords: blockCell(dc.nodes[0], i), Value: value}}
		if _, _, err := dc.coord.Delta(rows, 0); err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		applyRef(t, ref, rows)
	}

	for i := 0; i < 5; i++ {
		ingest(i, float64(i+1))
	}

	// Kill -9: no flush, no goodbye. The next write to block 0 finds the
	// corpse, evicts it, and succeeds on the surviving replica.
	dc.nodes[0].Crash()
	for i := 5; i < 12; i++ {
		ingest(i, float64(i+1))
	}
	if s := dc.coord.Stats(); s.ReplicaDowns == 0 {
		t.Fatalf("writes to a crashed replica never evicted it (stats %+v)", s)
	}

	dc.restartNode(t, 0)
	waitRejoins(t, dc.coord, 1)

	// The node recovered from checkpoint + WAL tail and was caught up on
	// the deltas it missed; its log must match the group high-water mark.
	if got := dc.nodes[0].LastLSN(); got != 12 {
		t.Fatalf("rejoined replica at LSN %d, want 12", got)
	}
	if rec := dc.nodes[0].RecoveryMetrics().Flatten(); rec["recovery.replayed_records"] == 0 && rec["recovery.checkpoints"] == 0 {
		t.Fatalf("restart performed no recovery work: %v", rec)
	}
	assertCoordMatches(t, dc.coord, ref, "after rejoin")

	// Kill the peer: block 0 is now answerable only by the rejoined
	// replica, so exact totals here mean zero acknowledged-delta loss
	// across the kill -9.
	dc.nodes[2].Crash()
	assertCoordMatches(t, dc.coord, ref, "rejoined replica alone")

	// And the rejoined replica keeps ingesting: the write path evicts the
	// dead peer and continues single-copy.
	ingest(12, 99)
	assertCoordMatches(t, dc.coord, ref, "single-copy ingest")
}

// TestCoordinatorDeltaValidation covers the ingest guardrails: clients
// may not pick LSNs, empty and out-of-schema deltas are rejected, and a
// cluster of in-memory nodes refuses writes outright.
func TestCoordinatorDeltaValidation(t *testing.T) {
	ds, _ := test4D(t)
	dc := startDurableCluster(t, ds, 2, 1)

	if _, _, err := dc.coord.Delta([]server.Row{{Coords: []int{0, 0, 0, 0}, Value: 1}}, 7); err == nil {
		t.Fatal("client-chosen LSN accepted")
	}
	if _, _, err := dc.coord.Delta(nil, 0); err == nil {
		t.Fatal("empty delta accepted")
	}
	if _, _, err := dc.coord.Delta([]server.Row{{Coords: []int{0, 0}, Value: 1}}, 0); err == nil {
		t.Fatal("wrong-rank delta accepted")
	}
	if _, _, err := dc.coord.Delta([]server.Row{{Coords: []int{99, 0, 0, 0}, Value: 1}}, 0); err == nil {
		t.Fatal("out-of-bounds delta accepted")
	}

	mem := startCluster(t, ds, 2, 1)
	if _, _, err := mem.coord.Delta([]server.Row{{Coords: []int{0, 0, 0, 0}, Value: 1}}, 0); err == nil {
		t.Fatal("in-memory cluster accepted a delta")
	}
	// And over the wire the refusal is a clean ERR, not a dropped
	// connection.
	cl, err := server.Dial(mem.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Delta([]server.Row{{Coords: []int{0, 0, 0, 0}, Value: 1}}); err == nil {
		t.Fatal("in-memory cluster acked a DELTA over the protocol")
	} else if _, ok := err.(*server.RemoteError); !ok {
		t.Fatalf("want a remote ERR, got %v", err)
	}
	if _, err := cl.Total(); err != nil {
		t.Fatalf("connection unusable after rejected DELTA: %v", err)
	}
}

// TestDurableRestartIdempotentRedelivery checks the replication path's
// idempotence end to end: re-sending an already-logged record to a node
// reports applied=false and changes nothing.
func TestDurableRestartIdempotentRedelivery(t *testing.T) {
	ds, ref := test4D(t)
	dc := startDurableCluster(t, ds, 2, 1)

	rows := []server.Row{{Coords: blockCell(dc.nodes[0], 0), Value: 5}}
	if _, _, err := dc.coord.Delta(rows, 0); err != nil {
		t.Fatal(err)
	}
	applyRef(t, ref, rows)

	cl, err := server.Dial(dc.nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	applied, err := cl.DeltaAt(1, rows)
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatal("redelivered record applied twice")
	}
	if _, err := cl.DeltaAt(5, rows); err == nil {
		t.Fatal("gap LSN accepted")
	}
	assertCoordMatches(t, dc.coord, ref, "after redelivery")
}

// TestDurableNodeColdRestartWithoutDataset checks a restart needs only
// the data directory: base state comes from the checkpoint, not the
// original dataset.
func TestDurableNodeColdRestartWithoutDataset(t *testing.T) {
	ds, ref := test4D(t)
	dc := startDurableCluster(t, ds, 2, 1)

	var all []server.Row
	for i := 0; i < 9; i++ { // crosses CheckpointEvery=4 twice
		rows := []server.Row{
			{Coords: blockCell(dc.nodes[0], i), Value: float64(i + 1)},
			{Coords: blockCell(dc.nodes[1], i), Value: float64(i + 2)},
		}
		if _, _, err := dc.coord.Delta(rows, 0); err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		applyRef(t, ref, rows)
		all = append(all, rows...)
	}
	// No delta was in flight during the crashes, so the replicas are
	// never marked down and no rejoin runs: the restarted nodes must be
	// whole from checkpoint + WAL replay alone. Reads find the stale
	// pooled connections dead and redial.
	for id := 0; id < 2; id++ {
		dc.nodes[id].Crash()
		dc.restartNode(t, id) // restartNode passes ds == nil
		if got := dc.nodes[id].LastLSN(); got != 9 {
			t.Fatalf("node %d recovered to LSN %d, want 9", id, got)
		}
	}
	assertCoordMatches(t, dc.coord, ref, "cold dataset-free restart")
	if got := len(all); got != 18 {
		t.Fatalf("test bookkeeping: %d rows", got)
	}
}

// startLockstepPair boots two durable replicas of a single block with
// auto-checkpointing off (so an unacknowledged tail record is never
// baked into a checkpoint) and a coordinator whose rejoin loop is
// disabled — tests drive tryRejoin synchronously for determinism.
func startLockstepPair(t *testing.T, ds *parcube.Dataset) *durableCluster {
	t.Helper()
	return startLockstepPairCfg(t, ds, nil)
}

// startLockstepPairCfg is startLockstepPair with a DurableOptions hook
// (group commit, commit wait) and optional cube build options (e.g. a
// non-sum aggregator) on an otherwise standard pair.
func startLockstepPairCfg(t *testing.T, ds *parcube.Dataset, mutate func(*DurableOptions), opts ...parcube.BuildOption) *durableCluster {
	t.Helper()
	plan, err := NewPlan(ds.Schema().Names(), ds.Schema().Sizes(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	dc := &durableCluster{plan: plan, dopts: DurableOptions{Fsync: wal.FsyncAlways}}
	if mutate != nil {
		mutate(&dc.dopts)
	}
	for i := 0; i < 2; i++ {
		dir := t.TempDir()
		dopts := dc.dopts
		dopts.DataDir = dir
		n, err := StartDurableNode(plan, i, ds, "127.0.0.1:0", dopts, opts...)
		if err != nil {
			t.Fatal(err)
		}
		dc.dirs = append(dc.dirs, dir)
		dc.nodes = append(dc.nodes, n)
	}
	t.Cleanup(func() {
		for _, n := range dc.nodes {
			_ = n.Close()
		}
	})
	dc.coord, err = NewCoordinator(Config{
		Addrs:       []string{dc.nodes[0].Addr(), dc.nodes[1].Addr()},
		Timeout:     2 * time.Second,
		Backoff:     time.Millisecond,
		Rounds:      4,
		RejoinEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dc.coord.Close() })
	return dc
}

// TestLostAckDivergenceRepairedOnRejoin reproduces the lost-ack LSN
// reuse: replica 0 applies and logs delta D1 at LSN 4 but its ack never
// reaches the coordinator, so the position stays open and a different
// delta D2 is assigned LSN 4 on the live peer. Both replicas then sit at
// LSN 4 with different content — rejoin must detect the divergence by
// comparing tail content (position alone matches), truncate the
// divergent record, and resupply D2 before readmitting.
func TestLostAckDivergenceRepairedOnRejoin(t *testing.T) {
	ds, ref := test4D(t)
	dc := startLockstepPair(t, ds)
	g := dc.coord.groups()[0]
	rep := g.replicaList()[0] // nodes[0]: replicas follow Addrs order

	for i := 0; i < 3; i++ {
		rows := []server.Row{{Coords: blockCell(dc.nodes[0], i), Value: float64(i + 1)}}
		if _, _, err := dc.coord.Delta(rows, 0); err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		applyRef(t, ref, rows)
	}

	// The lost-ack round: the write reaches replica 0 (applied + logged at
	// LSN 4) but the ack is lost, so the coordinator marks it down and
	// g.lastLSN stays at 3. The client saw a failure; D1 is not in ref.
	d1 := []server.Row{{Coords: blockCell(dc.nodes[0], 3), Value: 111}}
	direct, err := server.Dial(dc.nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if applied, err := direct.DeltaAt(4, d1); err != nil || !applied {
		t.Fatalf("direct delta at 4: applied=%v, %v", applied, err)
	}
	if err := direct.Close(); err != nil {
		t.Fatal(err)
	}
	dc.coord.markDown(rep)

	// The retried (different) delta reuses LSN 4 on the live peer.
	d2 := []server.Row{{Coords: blockCell(dc.nodes[0], 4), Value: 222}}
	if _, _, err := dc.coord.Delta(d2, 0); err != nil {
		t.Fatal(err)
	}
	applyRef(t, ref, d2)
	if a, b := dc.nodes[0].LastLSN(), dc.nodes[1].LastLSN(); a != 4 || b != 4 {
		t.Fatalf("setup: replicas at LSNs %d and %d, want both at 4 (with different content)", a, b)
	}

	dc.coord.tryRejoin(g, rep)
	if rep.down.Load() {
		t.Fatalf("replica not readmitted (stats %+v)", dc.coord.Stats())
	}
	if got := dc.coord.Stats().TailTruncates; got == 0 {
		t.Fatal("divergent tail readmitted without truncation")
	}

	// The repaired replica must hold D2 and not D1 — query it directly
	// (its block covers the whole array, so its total is the cube total).
	cl, err := server.Dial(dc.nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	total, err := cl.Total()
	if err != nil {
		t.Fatal(err)
	}
	if want := ref.Total(); total != want {
		t.Fatalf("repaired replica total = %v, want %v (divergent cells served)", total, want)
	}
	if a, b := dc.nodes[0].LastLSN(), dc.nodes[1].LastLSN(); a != b || a != 4 {
		t.Fatalf("replicas at LSNs %d and %d after repair, want lockstep at 4", a, b)
	}
	assertCoordMatches(t, dc.coord, ref, "after divergence repair")
}

// TestDivergentTailRepairedAfterRestart is the kill -9 variant of the
// lost-ack reuse: replica 0 logs D1 at LSN 4, dies before acking, the
// live peer gets a different delta at LSN 4, and replica 0 restarts from
// its data directory alone. The restart must not checkpoint the
// recovered state — that would stamp the divergent record into a
// snapshot and make the coordinator's TRUNCATE fail with
// ErrBelowCheckpoint, stranding the replica down forever.
func TestDivergentTailRepairedAfterRestart(t *testing.T) {
	ds, ref := test4D(t)
	dc := startLockstepPair(t, ds)
	g := dc.coord.groups()[0]
	rep := g.replicaList()[0]

	for i := 0; i < 3; i++ {
		rows := []server.Row{{Coords: blockCell(dc.nodes[0], i), Value: float64(i + 1)}}
		if _, _, err := dc.coord.Delta(rows, 0); err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		applyRef(t, ref, rows)
	}

	d1 := []server.Row{{Coords: blockCell(dc.nodes[0], 3), Value: 111}}
	direct, err := server.Dial(dc.nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if applied, err := direct.DeltaAt(4, d1); err != nil || !applied {
		t.Fatalf("direct delta at 4: applied=%v, %v", applied, err)
	}
	_ = direct.Close()
	dc.nodes[0].Crash()
	dc.coord.markDown(rep)

	d2 := []server.Row{{Coords: blockCell(dc.nodes[0], 4), Value: 222}}
	if _, _, err := dc.coord.Delta(d2, 0); err != nil {
		t.Fatal(err)
	}
	applyRef(t, ref, d2)

	dc.restartNode(t, 0)
	if got := dc.nodes[0].LastLSN(); got != 4 {
		t.Fatalf("restarted node at LSN %d, want 4 (divergent tail recovered)", got)
	}

	// The pool may hand back a stale pre-crash connection on the first
	// probe; the background loop simply retries next tick, so do the same.
	for i := 0; i < 5 && rep.down.Load(); i++ {
		dc.coord.tryRejoin(g, rep)
	}
	if rep.down.Load() {
		t.Fatalf("replica not readmitted after restart (stats %+v)", dc.coord.Stats())
	}
	if got := dc.coord.Stats().TailTruncates; got == 0 {
		t.Fatal("divergent tail readmitted without truncation")
	}

	cl, err := server.Dial(dc.nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	total, err := cl.Total()
	if err != nil {
		t.Fatal(err)
	}
	if want := ref.Total(); total != want {
		t.Fatalf("repaired replica total = %v, want %v (divergent cell survived restart)", total, want)
	}
	assertCoordMatches(t, dc.coord, ref, "after restart divergence repair")
}

// TestOrphanTailTruncatedOnRejoin covers the simpler half of the lost-ack
// problem: the replica logged a record above the group's high-water mark
// and nothing was reassigned meanwhile. The record was never acked to any
// client, so rejoin discards it and frees the position for reuse.
func TestOrphanTailTruncatedOnRejoin(t *testing.T) {
	ds, ref := test4D(t)
	dc := startLockstepPair(t, ds)
	g := dc.coord.groups()[0]
	rep := g.replicaList()[0]

	for i := 0; i < 2; i++ {
		rows := []server.Row{{Coords: blockCell(dc.nodes[0], i), Value: float64(i + 1)}}
		if _, _, err := dc.coord.Delta(rows, 0); err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		applyRef(t, ref, rows)
	}

	orphan := []server.Row{{Coords: blockCell(dc.nodes[0], 2), Value: 111}}
	direct, err := server.Dial(dc.nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if applied, err := direct.DeltaAt(3, orphan); err != nil || !applied {
		t.Fatalf("direct delta at 3: applied=%v, %v", applied, err)
	}
	if err := direct.Close(); err != nil {
		t.Fatal(err)
	}
	dc.coord.markDown(rep)

	dc.coord.tryRejoin(g, rep)
	if rep.down.Load() {
		t.Fatalf("replica not readmitted (stats %+v)", dc.coord.Stats())
	}
	if got := dc.coord.Stats().TailTruncates; got != 1 {
		t.Fatalf("tail truncates = %d, want 1", got)
	}
	if a, b := dc.nodes[0].LastLSN(), dc.nodes[1].LastLSN(); a != b || a != 2 {
		t.Fatalf("replicas at LSNs %d and %d, want lockstep at 2", a, b)
	}
	// The never-acked cell must not be served.
	cl, err := server.Dial(dc.nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	total, err := cl.Total()
	if err != nil {
		t.Fatal(err)
	}
	if want := ref.Total(); total != want {
		t.Fatalf("replica total = %v, want %v (orphan record served)", total, want)
	}
	// The vacated position is reusable by the next group write.
	rows := []server.Row{{Coords: blockCell(dc.nodes[0], 3), Value: 7}}
	lsn, _, err := dc.coord.Delta(rows, 0)
	if err != nil || lsn != 3 {
		t.Fatalf("delta after repair at LSN %d, %v; want 3", lsn, err)
	}
	applyRef(t, ref, rows)
	assertCoordMatches(t, dc.coord, ref, "after orphan truncation")
}

// TestPoisonedBackendStopsAcking: when a delta reaches the cube but its
// WAL append fails, the backend must stop acking deltas, checkpoints,
// and truncations until restart — acking on top of the unlogged mutation
// would acknowledge state a restart cannot reconstruct.
func TestPoisonedBackendStopsAcking(t *testing.T) {
	ds, _ := test4D(t)
	plan, err := NewPlan(ds.Schema().Names(), ds.Schema().Sizes(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := StartDurableNode(plan, 0, ds, "127.0.0.1:0", DurableOptions{
		DataDir: t.TempDir(), Fsync: wal.FsyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	b := n.durable

	if _, _, err := b.Delta([]server.Row{{Coords: blockCell(n, 0), Value: 1}}, 0); err != nil {
		t.Fatal(err)
	}
	before, err := b.Total()
	if err != nil {
		t.Fatal(err)
	}

	// Fail the WAL out from under the backend: the next delta applies to
	// the cube but cannot be logged.
	b.mu.Lock()
	b.mgr.Crash()
	b.mu.Unlock()
	_, _, err = b.Delta([]server.Row{{Coords: blockCell(n, 1), Value: 50}}, 0)
	if err == nil {
		t.Fatal("unlogged delta was acked")
	}
	if !strings.Contains(err.Error(), "applied but not logged") {
		t.Fatalf("poison error = %v", err)
	}

	if _, _, err := b.Delta([]server.Row{{Coords: blockCell(n, 2), Value: 7}}, 0); err == nil {
		t.Fatal("poisoned backend acked a delta")
	}
	if err := n.Checkpoint(); err == nil {
		t.Fatal("poisoned node wrote a checkpoint")
	}
	if _, err := b.TruncateTail(0); err == nil {
		t.Fatal("poisoned backend accepted a truncation")
	}
	// Reads stay up: the cube is internally consistent, just ahead of the
	// log by the one unlogged mutation.
	after, err := b.Total()
	if err != nil {
		t.Fatal(err)
	}
	if after != before+50 {
		t.Fatalf("total after poisoning = %v, want %v", after, before+50)
	}
}
