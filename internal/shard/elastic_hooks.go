package shard

// This file is the coordinator's membership-change surface: the
// primitives internal/elastic drives to take a live cluster from plan P
// to plan P' without failing a query. Three operations exist —
//
//   AttachReplica: admit a caught-up node as a new replica of a block
//   group (the cutover of a grow migration);
//   DetachReplica: remove a replica from a group while its peers keep
//   serving (the cutover of a drain);
//   SplitCutover:  replace one block group with child groups that tile
//   its block exactly (the cutover of a hot-group split).
//
// All three follow the same discipline: every serving-state mutation
// happens at the END, under the group's writeMu, after the incoming
// state is provably caught up — so a migration that dies anywhere
// earlier simply never happened (the old owners keep serving, no epoch
// bump, nothing to undo). The topology swap itself is an atomic pointer
// store of an immutable snapshot; in-flight queries and ingest finish
// against the snapshot they loaded, which stays fully consistent.

import (
	"fmt"
	"strconv"
	"time"

	"parcube/internal/nd"
)

// PlanEpoch returns the serving topology's current epoch: 1 at startup,
// +1 per membership cutover, strictly monotone for the life of the
// coordinator.
func (c *Coordinator) PlanEpoch() uint64 { return c.top.Load().epoch }

// GroupStatus describes one block group of the current topology.
type GroupStatus struct {
	Index   int
	Block   nd.Block
	LastLSN uint64
	// Addrs lists the group's replicas in preference order, IDs their
	// shard ids in the same order; Live counts the ones not marked down.
	Addrs []string
	IDs   []int
	Live  int
}

// Groups snapshots the current topology for the elastic control plane
// and operator tooling.
func (c *Coordinator) Groups() []GroupStatus {
	groups := c.groups()
	out := make([]GroupStatus, len(groups))
	for b, g := range groups {
		st := GroupStatus{Index: b, Block: g.block}
		for _, rep := range g.replicaList() {
			st.Addrs = append(st.Addrs, rep.addr)
			st.IDs = append(st.IDs, rep.id)
			if !rep.down.Load() {
				st.Live++
			}
		}
		g.writeMu.Lock()
		st.LastLSN = g.lastLSN
		g.writeMu.Unlock()
		out[b] = st
	}
	return out
}

// GroupIndexByBlock resolves a block rendering (as exchanged by
// SHARDINFO) to its group index in the current topology, or -1.
func (c *Coordinator) GroupIndexByBlock(block string) int {
	for b, g := range c.groups() {
		if g.block.String() == block {
			return b
		}
	}
	return -1
}

// LiveAddr returns the address of a live durable replica of group b —
// the checkpoint-export source of a migration.
func (c *Coordinator) LiveAddr(b int) (string, error) {
	groups := c.groups()
	if b < 0 || b >= len(groups) {
		return "", fmt.Errorf("shard: block group %d out of range [0,%d)", b, len(groups))
	}
	for _, rep := range groups[b].replicaList() {
		if rep.durable && !rep.down.Load() {
			return rep.addr, nil
		}
	}
	return "", fmt.Errorf("shard: block %s has no live durable replica", groups[b].block)
}

// handshakeReplica dials addr, performs the SHARDINFO+SCHEMA handshake,
// and returns the replica plus the block it announced. The cluster's
// operator and schema must match; on any failure the pool is closed.
func (c *Coordinator) handshakeReplica(addr string) (*replica, nd.Block, error) {
	p := newPool(addr, c.cfg.Timeout)
	fail := func(err error) (*replica, nd.Block, error) {
		_ = p.close()
		return nil, nd.Block{}, err
	}
	cl, err := p.get()
	if err != nil {
		return fail(fmt.Errorf("shard: handshake with %s: %w", addr, err))
	}
	info, err := cl.ShardInfo()
	if err != nil {
		p.discard(cl)
		return fail(fmt.Errorf("shard: handshake with %s: %w", addr, err))
	}
	schema, err := cl.Schema()
	if err != nil {
		p.discard(cl)
		return fail(fmt.Errorf("shard: schema from %s: %w", addr, err))
	}
	p.put(cl)

	if got := info["op"]; got != c.op.String() {
		return fail(fmt.Errorf("shard: %s aggregates with %s, cluster uses %v", addr, got, c.op))
	}
	names, sizes, err := parseSchema(schema)
	if err != nil {
		return fail(fmt.Errorf("shard: %s: %w", addr, err))
	}
	if !sameSchema(c.names, c.sizes, names, sizes) {
		return fail(fmt.Errorf("shard: %s serves schema %v %v, cluster serves %v %v",
			addr, names, sizes, c.names, c.sizes))
	}
	block, err := ParseBlock(info["block"])
	if err != nil {
		return fail(fmt.Errorf("shard: %s: %w", addr, err))
	}
	id, err := strconv.Atoi(info["id"])
	if err != nil {
		return fail(fmt.Errorf("shard: %s: malformed shard id %q", addr, info["id"]))
	}
	rep := &replica{addr: addr, id: id, pool: p}
	if lsnField, ok := info["lsn"]; ok {
		lsn, err := strconv.ParseUint(lsnField, 10, 64)
		if err != nil {
			return fail(fmt.Errorf("shard: %s: malformed lsn %q", addr, lsnField))
		}
		rep.durable = true
		rep.handshakeLSN = lsn
	}
	return rep, block, nil
}

// bumpEpochLocked publishes the current group set under epoch+1; the
// caller holds topMu (directly or transitively through a cutover).
func (c *Coordinator) bumpEpochLocked() uint64 {
	cur := c.top.Load()
	next := &topology{epoch: cur.epoch + 1, groups: cur.groups}
	c.top.Store(next)
	return next.epoch
}

// AttachReplica admits the durable node at addr as a new replica of
// block group b: handshake (the node must announce exactly the group's
// block — the migration engine ships it a checkpoint first, so its
// handshake LSN is the shipped position), bulk WAL catch-up from a live
// peer outside the write lock, then a final catch-up under the lock
// that must reach the group's high-water mark exactly before the
// replica list is swapped and the epoch bumped. Returns the length of
// the write-pause window (the cutover latency). Any failure before the
// swap leaves the group untouched — the fail-safe rollback of the
// migration state machine.
func (c *Coordinator) AttachReplica(b int, addr string) (cutover time.Duration, err error) {
	groups := c.groups()
	if b < 0 || b >= len(groups) {
		return 0, fmt.Errorf("shard: block group %d out of range [0,%d)", b, len(groups))
	}
	g := groups[b]
	for _, rep := range g.replicaList() {
		if rep.addr == addr {
			return 0, fmt.Errorf("shard: %s is already a replica of block %s", addr, g.block)
		}
	}
	rep, block, err := c.handshakeReplica(addr)
	if err != nil {
		return 0, err
	}
	fail := func(err error) (time.Duration, error) {
		_ = rep.pool.close()
		return 0, err
	}
	if !rep.durable {
		return fail(fmt.Errorf("shard: %s is not durable; only durable nodes join live groups", addr))
	}
	if block.String() != g.block.String() {
		return fail(fmt.Errorf("shard: %s serves block %s, group %d serves %s", addr, block, b, g.block))
	}

	cl, err := rep.pool.get()
	if err != nil {
		return fail(fmt.Errorf("shard: %s: %w", addr, err))
	}
	// Bulk catch-up with ingest still flowing: catchUp streams the
	// records above the shipped checkpoint from a live peer (rep is not
	// in the group's list yet, so it is never chosen as its own peer).
	repLSN, err := c.catchUp(g, rep, cl, rep.handshakeLSN)
	if err != nil {
		rep.pool.discard(cl)
		return fail(fmt.Errorf("shard: catching up %s: %w", addr, err))
	}

	// Cutover: pause the group's ingest, close the last gap, and only
	// swap membership if the replica provably reached the high-water
	// mark. The pause is the migration's entire write-unavailability.
	start := time.Now()
	g.writeMu.Lock()
	defer g.writeMu.Unlock()
	if g.retired {
		rep.pool.discard(cl)
		return fail(fmt.Errorf("shard: block %s was retired by a split during the migration", g.block))
	}
	repLSN, err = c.catchUp(g, rep, cl, repLSN)
	if err != nil || repLSN != g.lastLSN {
		rep.pool.discard(cl)
		if err == nil {
			err = fmt.Errorf("replica at lsn %d, group at %d with no reachable peer", repLSN, g.lastLSN)
		}
		return fail(fmt.Errorf("shard: final catch-up of %s: %w", addr, err))
	}
	rep.pool.put(cl)
	g.setReplicas(append(append([]*replica(nil), g.replicaList()...), rep))
	g.tailAckers[rep.addr] = true

	c.topMu.Lock()
	c.bumpEpochLocked()
	c.topMu.Unlock()
	return time.Since(start), nil
}

// DetachReplica removes the replica at addr from block group b — the
// cutover of a drain. It refuses to remove the group's last live
// tail-acking durable replica (the group would lose its verified tail).
// The removed replica's pool moves to the retired set and stays open
// until Close, so reads in flight on older topology snapshots finish
// against it: the drained node keeps serving until its last reader
// lets go, which is the zero-downtime drain contract.
func (c *Coordinator) DetachReplica(b int, addr string) (err error) {
	groups := c.groups()
	if b < 0 || b >= len(groups) {
		return fmt.Errorf("shard: block group %d out of range [0,%d)", b, len(groups))
	}
	g := groups[b]
	g.writeMu.Lock()
	defer g.writeMu.Unlock()
	if g.retired {
		return fmt.Errorf("shard: block %s was retired by a split", g.block)
	}
	reps := g.replicaList()
	var victim *replica
	remaining := make([]*replica, 0, len(reps))
	survivorsAck := false
	for _, rep := range reps {
		if rep.addr == addr {
			victim = rep
			continue
		}
		remaining = append(remaining, rep)
		if rep.durable && !rep.down.Load() && g.tailAckers[rep.addr] {
			survivorsAck = true
		}
	}
	if victim == nil {
		return fmt.Errorf("shard: %s is not a replica of block %s", addr, g.block)
	}
	if len(remaining) == 0 {
		return fmt.Errorf("shard: refusing to drain %s: it is the last replica of block %s", addr, g.block)
	}
	if victim.durable && !survivorsAck {
		return fmt.Errorf("shard: refusing to drain %s: no remaining live replica holds block %s's verified tail", addr, g.block)
	}
	g.setReplicas(remaining)
	delete(g.tailAckers, addr)
	c.retiredMu.Lock()
	c.retiredReps = append(c.retiredReps, victim)
	c.retiredMu.Unlock()

	c.topMu.Lock()
	c.bumpEpochLocked()
	c.topMu.Unlock()
	return nil
}

// SplitCutover replaces block group parent with child groups served by
// the nodes at childAddrs, which must jointly announce blocks tiling
// the parent's block exactly. finalize runs under the parent's write
// lock with the group's final LSN — the migration engine uses it to
// drain the parent's last WAL records into the children — and after it
// returns every child replica must agree on its block's LSN. The swap
// keeps group indices stable: the first child takes the parent's slot,
// the rest append. The parent is retired (stale-routed ingest re-routes
// via errGroupRetired; see ingest.go) and its replicas move to the
// retired set so in-flight reads finish. Failure anywhere before the
// swap leaves the parent serving, untouched.
func (c *Coordinator) SplitCutover(parent int, childAddrs []string, finalize func(parentLSN uint64) error) (err error) {
	groups := c.groups()
	if parent < 0 || parent >= len(groups) {
		return fmt.Errorf("shard: block group %d out of range [0,%d)", parent, len(groups))
	}
	g := groups[parent]
	if len(childAddrs) == 0 {
		return fmt.Errorf("shard: split of block %s needs child nodes", g.block)
	}

	// Handshake every child and group its replicas by announced block.
	type childGroup struct {
		block nd.Block
		reps  []*replica
	}
	var children []childGroup
	byBlock := make(map[string]int)
	var pools []*replica
	fail := func(err error) error {
		for _, rep := range pools {
			_ = rep.pool.close()
		}
		return err
	}
	for _, addr := range childAddrs {
		rep, block, err := c.handshakeReplica(addr)
		if err != nil {
			return fail(err)
		}
		pools = append(pools, rep)
		if !rep.durable {
			return fail(fmt.Errorf("shard: split child %s is not durable", addr))
		}
		key := block.String()
		i, ok := byBlock[key]
		if !ok {
			i = len(children)
			byBlock[key] = i
			children = append(children, childGroup{block: block})
		}
		children[i].reps = append(children[i].reps, rep)
	}

	// The children must tile the parent exactly: inside it, pairwise
	// disjoint, and jointly covering its volume.
	covered := 0
	for i, ch := range children {
		if ch.block.Rank() != g.block.Rank() {
			return fail(fmt.Errorf("shard: child %s has rank %d, parent %s has %d",
				ch.block, ch.block.Rank(), g.block, g.block.Rank()))
		}
		for j := range ch.block.Lo {
			if ch.block.Lo[j] < g.block.Lo[j] || ch.block.Hi[j] > g.block.Hi[j] {
				return fail(fmt.Errorf("shard: child %s outside parent %s", ch.block, g.block))
			}
		}
		covered += ch.block.Size()
		for _, other := range children[i+1:] {
			if blocksOverlap(ch.block, other.block) {
				return fail(fmt.Errorf("shard: children %s and %s overlap", ch.block, other.block))
			}
		}
	}
	if covered != g.block.Size() {
		return fail(fmt.Errorf("shard: children cover %d of parent %s's %d cells", covered, g.block, g.block.Size()))
	}

	// Cutover: pause the parent's ingest, drain its tail into the
	// children, verify every child replica converged, then swap.
	g.writeMu.Lock()
	defer g.writeMu.Unlock()
	if g.retired {
		return fail(fmt.Errorf("shard: block %s already retired", g.block))
	}
	if finalize != nil {
		if err := finalize(g.lastLSN); err != nil {
			return fail(fmt.Errorf("shard: draining parent %s's tail: %w", g.block, err))
		}
	}
	newGroups := make([]*blockGroup, 0, len(children))
	for i := range children {
		ch := &children[i]
		ng := &blockGroup{block: ch.block, tailAckers: make(map[string]bool)}
		first := true
		var lsn uint64
		for _, rep := range ch.reps {
			cur, err := c.probeLSN(rep)
			if err != nil {
				return fail(fmt.Errorf("shard: probing split child %s: %w", rep.addr, err))
			}
			if first {
				lsn, first = cur, false
			} else if cur != lsn {
				return fail(fmt.Errorf("shard: split child %s at lsn %d, its peer at %d — children diverged",
					rep.addr, cur, lsn))
			}
			ng.tailAckers[rep.addr] = true
		}
		ng.lastLSN = lsn
		ng.setReplicas(ch.reps)
		newGroups = append(newGroups, ng)
	}

	// Swap: the first child takes the parent's slot, the rest append —
	// stable indices keep index-keyed cache invalidation sound. The
	// parent is located by pointer in the CURRENT topology (another
	// group's split may have appended since our snapshot).
	c.topMu.Lock()
	cur := c.top.Load()
	slot := -1
	for i, h := range cur.groups {
		if h == g {
			slot = i
			break
		}
	}
	if slot < 0 {
		c.topMu.Unlock()
		return fail(fmt.Errorf("shard: block %s vanished from the topology mid-split", g.block))
	}
	swapped := append([]*blockGroup(nil), cur.groups...)
	swapped[slot] = newGroups[0]
	swapped = append(swapped, newGroups[1:]...)
	c.top.Store(&topology{epoch: cur.epoch + 1, groups: swapped})
	c.topMu.Unlock()

	g.retired = true
	c.retiredMu.Lock()
	c.retiredReps = append(c.retiredReps, g.replicaList()...)
	c.retiredMu.Unlock()
	c.notifyPlanChange(len(swapped))
	return nil
}

// probeLSN reads a replica's current WAL position over its pool.
func (c *Coordinator) probeLSN(rep *replica) (uint64, error) {
	cl, err := rep.pool.get()
	if err != nil {
		return 0, err
	}
	info, err := cl.ShardInfo()
	if err != nil {
		rep.pool.discard(cl)
		return 0, err
	}
	rep.pool.put(cl)
	lsnField, ok := info["lsn"]
	if !ok {
		return 0, fmt.Errorf("no lsn in SHARDINFO (not durable)")
	}
	return strconv.ParseUint(lsnField, 10, 64)
}
