package shard

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"parcube"
	"parcube/internal/server"
)

// fakeShard is the router's fault-injection harness, in the spirit of
// internal/comm.FaultyFabric: it completes the SHARDINFO/SCHEMA handshake
// honestly, then misbehaves on query commands according to mode —
// "hang" never answers, "err" replies ERR, "die" starts streaming a
// group-by and drops the connection mid-stream.
type fakeShard struct {
	ln     net.Listener
	info   server.ShardInfo
	schema string // the SCHEMA payload, e.g. "item:8 branch:6"
	mode   string

	mu     sync.Mutex
	hits   int // query commands received
	closed bool
}

func startFakeShard(t *testing.T, info server.ShardInfo, schema, mode string) *fakeShard {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeShard{ln: ln, info: info, schema: schema, mode: mode}
	go f.acceptLoop()
	t.Cleanup(f.close)
	return f
}

func (f *fakeShard) addr() string { return f.ln.Addr().String() }

func (f *fakeShard) close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	f.ln.Close()
}

func (f *fakeShard) queryHits() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits
}

func (f *fakeShard) acceptLoop() {
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return
		}
		go f.serve(conn)
	}
}

func (f *fakeShard) serve(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		cmd := strings.ToUpper(strings.Fields(strings.TrimSpace(line))[0])
		switch cmd {
		case "SHARDINFO":
			fmt.Fprintf(conn, "OK id=%d op=%s block=%s\n", f.info.ID, f.info.Op, f.info.Block)
		case "SCHEMA":
			fmt.Fprintf(conn, "OK %s\n", f.schema)
		case "QUIT":
			fmt.Fprintln(conn, "OK bye")
			return
		default:
			f.mu.Lock()
			f.hits++
			f.mu.Unlock()
			switch f.mode {
			case "hang":
				// Swallow the request; the client's deadline must fire.
			case "err":
				fmt.Fprintln(conn, "ERR injected fault")
			case "die":
				if cmd == "TOTAL" || cmd == "VALUE" {
					// Drop the link mid-line, before the newline lands.
					fmt.Fprint(conn, "OK 9")
					return
				}
				// Claim a large table, stream two rows, drop the link.
				fmt.Fprintln(conn, "OK 960")
				fmt.Fprintln(conn, "0,0,0,0 1")
				fmt.Fprintln(conn, "0,0,0,1 2")
				return
			}
		}
	}
}

// faultCluster starts one real shard node covering the whole array plus a
// fake replica for the same block, listed first so the coordinator
// prefers it, and returns a coordinator with tight timeouts.
func faultCluster(t *testing.T, mode string) (*Coordinator, *fakeShard, *parcube.Cube) {
	t.Helper()
	ds, cube := test4D(t)
	plan, err := NewPlan(ds.Schema().Names(), ds.Schema().Sizes(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	real, err := StartNode(plan, 0, ds, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { real.Close() })

	schemaFields := make([]string, 0, 4)
	names, sizes := ds.Schema().Names(), ds.Schema().Sizes()
	for i := range names {
		schemaFields = append(schemaFields, fmt.Sprintf("%s:%d", names[i], sizes[i]))
	}
	fake := startFakeShard(t, server.ShardInfo{
		ID:    1,
		Op:    "sum",
		Block: real.Block.String(),
	}, strings.Join(schemaFields, " "), mode)

	coord, err := NewCoordinator(Config{
		Addrs:   []string{fake.addr(), real.Addr()}, // fake is the preferred replica
		Timeout: 200 * time.Millisecond,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord, fake, cube
}

// assertFailover runs the query shapes against the coordinator and
// demands cell-exact equality with the reference despite the faulty
// preferred replica.
func assertFailover(t *testing.T, coord *Coordinator, fake *fakeShard, cube *parcube.Cube) {
	t.Helper()
	total, err := coord.Total()
	if err != nil {
		t.Fatal(err)
	}
	if total != cube.Total() {
		t.Fatalf("TOTAL = %v, want %v", total, cube.Total())
	}
	tbl, err := coord.GroupBy("item", "branch")
	if err != nil {
		t.Fatal(err)
	}
	want, err := cube.GroupBy("item", "branch")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Size() != want.Size() {
		t.Fatalf("size %d, want %d", tbl.Size(), want.Size())
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 6; j++ {
			if tbl.At(i, j) != want.At(i, j) {
				t.Fatalf("cell %d,%d = %v, want %v", i, j, tbl.At(i, j), want.At(i, j))
			}
		}
	}
	if fake.queryHits() == 0 {
		t.Fatal("fake shard never received a query — fault path not exercised")
	}
	s := coord.Stats()
	if s.Failovers == 0 || s.Errors == 0 || s.Retries == 0 {
		t.Fatalf("failover not recorded: %+v", s)
	}
	// The latency distributions must have seen every sub-request: one ask
	// observation per fan-out (each covering its retries and failover), and
	// at least one merge for the gathered group-by.
	if s.AskLatency.Count != s.Fanouts {
		t.Fatalf("ask latency saw %d of %d fan-outs", s.AskLatency.Count, s.Fanouts)
	}
	if s.AskLatency.Max <= 0 || s.AskLatency.P99 < s.AskLatency.P50 {
		t.Fatalf("implausible ask latency distribution: %+v", s.AskLatency)
	}
	if s.MergeLatency.Count == 0 {
		t.Fatalf("merge latency never recorded: %+v", s.MergeLatency)
	}
	// The snapshot and the exported registry are two views of one set of
	// counters; STATS consumers see the registry, so they must agree.
	reg := coord.Metrics().Flatten()
	if reg["retries"] != s.Retries || reg["failovers"] != s.Failovers ||
		reg["shard_errors"] != s.Errors || reg["fanouts"] != s.Fanouts {
		t.Fatalf("registry %v disagrees with snapshot %+v", reg, s)
	}
	if reg["ask_ns_count"] != s.AskLatency.Count || reg["merge_ns_count"] != s.MergeLatency.Count {
		t.Fatalf("registry histogram counts %v disagree with snapshot %+v", reg, s)
	}
}

func TestFailoverFromTimingOutShard(t *testing.T) {
	coord, fake, cube := faultCluster(t, "hang")
	assertFailover(t, coord, fake, cube)
}

func TestFailoverFromErroringShard(t *testing.T) {
	coord, fake, cube := faultCluster(t, "err")
	assertFailover(t, coord, fake, cube)
}

func TestFailoverFromShardDyingMidStream(t *testing.T) {
	coord, fake, cube := faultCluster(t, "die")
	assertFailover(t, coord, fake, cube)
}

// TestAllReplicasFaultySurfacesCause: with only the faulty shard serving
// the block, the final error must carry the block and the underlying
// cause instead of a partial table.
func TestAllReplicasFaultySurfacesCause(t *testing.T) {
	ds, _ := test4D(t)
	names, sizes := ds.Schema().Names(), ds.Schema().Sizes()
	schemaFields := make([]string, 0, 4)
	for i := range names {
		schemaFields = append(schemaFields, fmt.Sprintf("%s:%d", names[i], sizes[i]))
	}
	block := "[0:8,0:6,0:5,0:4]"
	fake := startFakeShard(t, server.ShardInfo{ID: 0, Op: "sum", Block: block},
		strings.Join(schemaFields, " "), "err")
	coord, err := NewCoordinator(Config{
		Addrs:   []string{fake.addr()},
		Timeout: 200 * time.Millisecond,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	_, err = coord.GroupBy("item")
	if err == nil {
		t.Fatal("query against all-faulty block succeeded")
	}
	for _, want := range []string{block, fake.addr(), "injected fault", "partial results discarded"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

// TestHandshakeRejectsMixedTopology: shards whose blocks do not tile the
// array, or that disagree on the operator, are rejected at startup.
func TestHandshakeRejectsMixedTopology(t *testing.T) {
	ds, _ := test4D(t)
	names, sizes := ds.Schema().Names(), ds.Schema().Sizes()
	schemaFields := make([]string, 0, 4)
	for i := range names {
		schemaFields = append(schemaFields, fmt.Sprintf("%s:%d", names[i], sizes[i]))
	}
	schema := strings.Join(schemaFields, " ")

	// Missing half the array.
	half := startFakeShard(t, server.ShardInfo{ID: 0, Op: "sum", Block: "[0:4,0:6,0:5,0:4]"}, schema, "err")
	if _, err := NewCoordinator(Config{Addrs: []string{half.addr()}}); err == nil ||
		!strings.Contains(err.Error(), "cover") {
		t.Fatalf("gappy topology accepted: %v", err)
	}

	// Operator disagreement.
	full := "[0:8,0:6,0:5,0:4]"
	sumShard := startFakeShard(t, server.ShardInfo{ID: 0, Op: "sum", Block: full}, schema, "err")
	maxShard := startFakeShard(t, server.ShardInfo{ID: 1, Op: "max", Block: full}, schema, "err")
	if _, err := NewCoordinator(Config{Addrs: []string{sumShard.addr(), maxShard.addr()}}); err == nil ||
		!strings.Contains(err.Error(), "aggregates with") {
		t.Fatalf("mixed operators accepted: %v", err)
	}
}
