package shard

import (
	"net"
	"sync"
	"testing"
	"time"
)

// slowProxy fronts a real shard node and delays every node->client
// transfer, making the replica correct but slow — the hedging target.
type slowProxy struct {
	ln     net.Listener
	target string
	delay  time.Duration

	mu    sync.Mutex
	conns []net.Conn
	hits  int
}

func startSlowProxy(t *testing.T, target string, delay time.Duration) *slowProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &slowProxy{ln: ln, target: target, delay: delay}
	go p.acceptLoop()
	t.Cleanup(p.close)
	return p
}

func (p *slowProxy) addr() string { return p.ln.Addr().String() }

func (p *slowProxy) close() {
	p.ln.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		_ = c.Close()
	}
	p.conns = nil
}

func (p *slowProxy) queryHits() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits
}

func (p *slowProxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			conn.Close()
			continue
		}
		p.mu.Lock()
		p.conns = append(p.conns, conn, up)
		p.mu.Unlock()
		go p.pipe(up, conn, 0) // client -> node: count requests, no delay
		go p.pipe(conn, up, p.delay)
	}
}

func (p *slowProxy) pipe(dst, src net.Conn, delay time.Duration) {
	defer dst.Close()
	defer src.Close()
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if delay > 0 {
				time.Sleep(delay)
			} else {
				p.mu.Lock()
				p.hits++
				p.mu.Unlock()
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// TestHedgedReadBeatsSlowReplica: with the preferred replica answering
// correctly but slowly, a hedged coordinator must fire a second attempt
// after the hedge delay, take the fast replica's answer, and record the
// fired/won counters — while staying cell-exact.
func TestHedgedReadBeatsSlowReplica(t *testing.T) {
	ds, cube := test4D(t)
	plan, err := NewPlan(ds.Schema().Names(), ds.Schema().Sizes(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumBlocks() != 1 {
		t.Fatalf("want a single 2-replica block, got %d blocks", plan.NumBlocks())
	}
	var nodes []*Node
	for i := 0; i < 2; i++ {
		n, err := StartNode(plan, i, ds, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		t.Cleanup(func() { n.Close() })
	}
	proxy := startSlowProxy(t, nodes[0].Addr(), 150*time.Millisecond)

	coord, err := NewCoordinator(Config{
		Addrs:      []string{proxy.addr(), nodes[1].Addr()}, // slow replica preferred
		Timeout:    5 * time.Second,
		Backoff:    time.Millisecond,
		Hedge:      true,
		HedgeDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })

	for i := 0; i < 3; i++ {
		total, err := coord.Total()
		if err != nil {
			t.Fatal(err)
		}
		if total != cube.Total() {
			t.Fatalf("hedged TOTAL = %v, want %v", total, cube.Total())
		}
	}
	got, err := coord.GroupBy("item", "branch")
	if err != nil {
		t.Fatal(err)
	}
	want, err := cube.GroupBy("item", "branch")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 6; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("hedged cell %d,%d = %v, want %v", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}

	s := coord.Stats()
	if s.HedgesFired == 0 {
		t.Fatalf("no hedges fired against a 150ms replica at a 5ms delay: %+v", s)
	}
	if s.HedgeWins == 0 {
		t.Fatalf("no hedge wins against a 150ms replica: %+v", s)
	}
	if s.HedgeWins > s.HedgesFired {
		t.Fatalf("more wins (%d) than fires (%d)", s.HedgeWins, s.HedgesFired)
	}
	if s.AttemptLatency.Count == 0 {
		t.Fatalf("attempt latency histogram never observed: %+v", s)
	}
	// The registry view (what STATS serves) must agree with the snapshot.
	reg := coord.Metrics().Flatten()
	if reg["hedges_fired"] != s.HedgesFired || reg["hedge_wins"] != s.HedgeWins {
		t.Fatalf("registry %v disagrees with snapshot %+v", reg, s)
	}
	if reg["attempt_ns_count"] != s.AttemptLatency.Count {
		t.Fatalf("registry attempt count %d disagrees with snapshot %d",
			reg["attempt_ns_count"], s.AttemptLatency.Count)
	}
	if proxy.queryHits() == 0 {
		t.Fatal("slow replica never saw a request — hedging path not exercised")
	}
}

// TestHedgeDelayDerivedFromHistogram: with no explicit HedgeDelay the
// coordinator derives it from the attempt latency distribution, clamped
// to [500µs, Timeout/2]; cold (no observations) it falls back to
// Timeout/16.
func TestHedgeDelayDerivedFromHistogram(t *testing.T) {
	ds, cube := test4D(t)
	cl := startCluster(t, ds, 2, 2) // 1 block x 2 replicas, fast

	hedged, err := NewCoordinator(Config{
		Addrs:   []string{cl.nodes[0].Addr(), cl.nodes[1].Addr()},
		Timeout: 800 * time.Millisecond,
		Backoff: time.Millisecond,
		Hedge:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hedged.Close() })

	if got, want := hedged.hedgeDelay(), 800*time.Millisecond/16; got != want {
		t.Fatalf("cold hedge delay = %v, want Timeout/16 = %v", got, want)
	}
	for i := 0; i < 20; i++ {
		total, err := hedged.Total()
		if err != nil {
			t.Fatal(err)
		}
		if total != cube.Total() {
			t.Fatalf("TOTAL = %v, want %v", total, cube.Total())
		}
	}
	// Loopback attempts are far faster than 500µs p99, so the derived
	// delay must sit at the lower clamp (and never above Timeout/2).
	d := hedged.hedgeDelay()
	if d < 500*time.Microsecond || d > 400*time.Millisecond {
		t.Fatalf("derived hedge delay %v outside [500µs, Timeout/2]", d)
	}
}
