package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"parcube/internal/server"
)

// This file is the coordinator's write path and rejoin protocol.
//
// Ingest keeps a block's replicas in lockstep: every replica of a block
// logs the same delta under the same LSN, assigned by the coordinator
// under the group's writeMu. A replica that fails a write (transport
// error, not an application rejection) is marked down — out of the
// scatter-gather read set — and a background loop later re-admits it:
// probe its SHARDINFO for the recovered WAL position, stream the missed
// records from a live peer with DELTASINCE, replay them onto the
// rejoiner with DELTA-at-LSN (idempotent, so repeats are harmless), and
// only when the replica has caught up to the group's high-water mark
// under writeMu does it return to the read set.

// Delta applies one delta through the cluster: rows are validated
// against the schema, split by owning block, and each involved block
// group logs them in replica lockstep. It implements
// server.DeltaBackend, so a coordinator served by server.NewBackend
// accepts the DELTA command directly.
//
// The coordinator assigns LSNs itself (per block group); clients must
// send lsn 0. The returned LSN is the largest assigned across the
// involved blocks. A delta spanning several blocks is applied per block
// independently — if one block fails mid-way the others keep the delta,
// so callers wanting atomic retries should batch per block.
func (c *Coordinator) Delta(rows []server.Row, lsn uint64) (uint64, bool, error) {
	if lsn != 0 {
		return 0, false, fmt.Errorf("shard: the coordinator assigns LSNs; retry without lsn")
	}
	if len(rows) == 0 {
		return 0, false, fmt.Errorf("shard: empty delta")
	}
	rank := len(c.sizes)
	perBlock := make(map[int][]server.Row)
	for _, row := range rows {
		if len(row.Coords) != rank {
			return 0, false, fmt.Errorf("shard: delta row has %d coordinates, schema has %d dimensions",
				len(row.Coords), rank)
		}
		owner := -1
		for b, g := range c.blocks {
			inside := true
			for j, x := range row.Coords {
				if x < g.block.Lo[j] || x >= g.block.Hi[j] {
					inside = false
					break
				}
			}
			if inside {
				owner = b
				break
			}
		}
		if owner < 0 {
			return 0, false, fmt.Errorf("shard: delta cell %v outside every block", row.Coords)
		}
		perBlock[owner] = append(perBlock[owner], row)
	}

	var (
		mu     sync.Mutex
		maxLSN uint64
		errs   []error
		wg     sync.WaitGroup
	)
	for b, part := range perBlock {
		wg.Add(1)
		go func(b int, part []server.Row) {
			defer wg.Done()
			blockLSN, err := c.deltaToGroup(c.blocks[b], part)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("block %s: %w", c.blocks[b].block, err))
				return
			}
			if blockLSN > maxLSN {
				maxLSN = blockLSN
			}
		}(b, part)
	}
	wg.Wait()
	if len(errs) > 0 {
		return 0, false, errors.Join(errs...)
	}
	c.stats.deltas.Inc()
	c.stats.deltaCells.Add(int64(len(rows)))
	return maxLSN, true, nil
}

// deltaToGroup logs one delta to every live replica of a block under
// the group's write lock, at LSN lastLSN+1. Application rejections (the
// replica said ERR — e.g. an overlapping delta) abort without advancing
// the LSN: validation is deterministic, so no replica applied it.
// Transport failures mark the replica down and the write proceeds on
// the rest; it succeeds if at least one replica acknowledged.
func (c *Coordinator) deltaToGroup(g *blockGroup, rows []server.Row) (uint64, error) {
	durable, total := 0, len(g.replicas)
	for _, rep := range g.replicas {
		if rep.durable {
			durable++
		}
	}
	if durable == 0 {
		return 0, fmt.Errorf("shard: replicas are not durable; ingest needs nodes started with a data dir")
	}
	if durable != total {
		return 0, fmt.Errorf("shard: %d of %d replicas are durable; mixed groups cannot ingest", durable, total)
	}

	g.writeMu.Lock()
	defer g.writeMu.Unlock()
	lsn := g.lastLSN + 1
	acks := 0
	var lastErr error
	for _, rep := range g.replicas {
		if rep.down.Load() {
			continue
		}
		cl, err := rep.pool.get()
		if err != nil {
			c.markDown(rep)
			lastErr = fmt.Errorf("dial %s: %w", rep.addr, err)
			continue
		}
		_, err = cl.DeltaAt(lsn, rows)
		if err != nil {
			var remote *server.RemoteError
			if errors.As(err, &remote) {
				// The replica answered: the connection is healthy and its
				// log did not advance. With no acks yet this is a clean
				// deterministic rejection; after an ack it means the
				// replica diverged from the group, so evict it.
				rep.pool.put(cl)
				if acks == 0 {
					return 0, err
				}
				c.markDown(rep)
				lastErr = fmt.Errorf("%s diverged: %w", rep.addr, err)
				continue
			}
			rep.pool.discard(cl)
			c.markDown(rep)
			lastErr = fmt.Errorf("%s: %w", rep.addr, err)
			continue
		}
		rep.pool.put(cl)
		acks++
	}
	if acks == 0 {
		// lastLSN stays put: nothing durable happened, so a retry
		// reassigns the same LSN and replicas that come back treat the
		// repeat idempotently.
		if lastErr == nil {
			lastErr = fmt.Errorf("every replica is down")
		}
		return 0, fmt.Errorf("shard: delta not acknowledged by any replica: %w", lastErr)
	}
	g.lastLSN = lsn
	return lsn, nil
}

// markDown evicts a replica from the serving set (once), so reads
// prefer its peers and the rejoin loop starts probing it.
func (c *Coordinator) markDown(rep *replica) {
	if rep.down.CompareAndSwap(false, true) {
		c.stats.replicaDowns.Inc()
	}
}

// rejoinLoop periodically probes down replicas and re-admits the ones
// it can catch up. Started by NewCoordinator when the cluster is
// durable and RejoinEvery is positive; stopped by Close.
func (c *Coordinator) rejoinLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.RejoinEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		for _, g := range c.blocks {
			for _, rep := range g.replicas {
				if rep.down.Load() {
					c.tryRejoin(g, rep)
				}
			}
		}
	}
}

// tryRejoin probes one down replica and, if reachable, catches it up
// from a live peer and returns it to the serving set. Failures leave
// the replica down for the next probe — every step is idempotent.
func (c *Coordinator) tryRejoin(g *blockGroup, rep *replica) {
	cl, err := rep.pool.get()
	if err != nil {
		return
	}
	info, err := cl.ShardInfo()
	if err != nil {
		rep.pool.discard(cl)
		return
	}
	lsnField, isDurable := info["lsn"]
	if !isDurable {
		// A non-durable replica rebuilt its cube from source on restart;
		// there is no log to reconcile, it is simply back.
		rep.pool.put(cl)
		c.readmit(rep)
		return
	}
	var repLSN uint64
	if _, err := fmt.Sscanf(lsnField, "%d", &repLSN); err != nil {
		rep.pool.discard(cl)
		return
	}

	// Bulk catch-up outside the write lock: stream missed records from a
	// live durable peer and replay them onto the rejoiner. Ingest may
	// keep advancing the group meanwhile; the final gap closes below.
	repLSN, err = c.catchUp(g, rep, cl, repLSN)
	if err != nil {
		rep.pool.discard(cl)
		return
	}

	// Close the last gap with ingest paused, then re-admit.
	g.writeMu.Lock()
	defer g.writeMu.Unlock()
	repLSN, err = c.catchUp(g, rep, cl, repLSN)
	if err != nil || repLSN != g.lastLSN {
		rep.pool.discard(cl)
		return
	}
	rep.pool.put(cl)
	c.readmit(rep)
}

// readmit returns a replica to the serving set (once).
func (c *Coordinator) readmit(rep *replica) {
	if rep.down.CompareAndSwap(true, false) {
		c.stats.rejoins.Inc()
	}
}

// catchUp streams the records above lsn from a live durable peer of g
// and replays them record-by-record onto the rejoining replica's client
// cl, returning the replica's new log position. With no live peer it
// returns lsn unchanged (the caller's high-water check decides whether
// that suffices).
func (c *Coordinator) catchUp(g *blockGroup, rep *replica, cl *server.Client, lsn uint64) (uint64, error) {
	var peer *replica
	for _, p := range g.replicas {
		if p != rep && p.durable && !p.down.Load() {
			peer = p
			break
		}
	}
	if peer == nil {
		return lsn, nil
	}
	pcl, err := peer.pool.get()
	if err != nil {
		return lsn, nil // peer unreachable; caller's LSN check decides
	}
	logged, err := pcl.DeltasSince(lsn)
	if err != nil {
		peer.pool.discard(pcl)
		return lsn, nil
	}
	peer.pool.put(pcl)
	for _, rec := range groupByLSN(logged) {
		if rec.lsn <= lsn {
			continue
		}
		if _, err := cl.DeltaAt(rec.lsn, rec.rows); err != nil {
			return lsn, err
		}
		lsn = rec.lsn
		c.stats.catchupRecords.Inc()
	}
	return lsn, nil
}

// loggedRecord is one WAL record reassembled from a DELTASINCE stream.
type loggedRecord struct {
	lsn  uint64
	rows []server.Row
}

// groupByLSN reassembles the flat rows of a DELTASINCE reply into
// records: consecutive rows sharing an LSN were logged together.
func groupByLSN(rows []server.LoggedRow) []loggedRecord {
	var recs []loggedRecord
	for _, r := range rows {
		if n := len(recs); n > 0 && recs[n-1].lsn == r.LSN {
			recs[n-1].rows = append(recs[n-1].rows, r.Row)
			continue
		}
		recs = append(recs, loggedRecord{lsn: r.LSN, rows: []server.Row{r.Row}})
	}
	return recs
}
