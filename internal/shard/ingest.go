package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"parcube/internal/server"
)

// This file is the coordinator's write path and rejoin protocol.
//
// Ingest keeps a block's replicas in lockstep: every replica of a block
// logs the same delta under the same LSN, assigned by the coordinator
// under the group's writeMu. A replica that fails a write (transport
// error, not an application rejection) is marked down — out of the
// scatter-gather read set — and a background loop later re-admits it:
// probe its SHARDINFO for the recovered WAL position, reconcile its log
// tail with the group (below), stream the missed records from a live
// peer with DELTASINCE, replay them onto the rejoiner with DELTA-at-LSN
// (idempotent, so repeats are harmless), and only when the replica has
// caught up to the group's high-water mark under writeMu does it return
// to the read set.
//
// Tail reconciliation exists because a lost ack can leave a down
// replica's log DIVERGENT, not merely behind: the replica applies and
// logs delta D1 at LSN N, the ack never arrives, and with no other acker
// that round lastLSN stays at N-1 — so the next (different) delta D2 is
// assigned the same LSN N on the live replicas. Matching log positions
// then no longer imply matching content. The invariant that makes repair
// cheap is that divergence can only live in the replica's NEWEST record:
// a down replica receives no lockstep writes, every earlier record was
// either acked by it or copied from a peer, and catch-up only appends.
// So before any catch-up, rejoin classifies the tail: records above the
// group's high-water mark were never acknowledged to any client and are
// truncated outright; a tail AT a group-assigned position is trusted
// only if this replica is a known tail acker, and otherwise its content
// is compared against a live peer's record at the same LSN — on
// mismatch the replica's tail record is truncated (TRUNCATE rebuilds
// its state from checkpoint + surviving log) and catch-up resupplies
// the group's true history. When no live peer exists to compare
// against, or the divergent record is already baked into the replica's
// newest checkpoint (TRUNCATE answers ERR with recovery's
// ErrBelowCheckpoint), the replica stays down rather than risk
// readmitting divergent state.

// Delta applies one delta through the cluster: rows are validated
// against the schema, split by owning block, and each involved block
// group logs them in replica lockstep. It implements
// server.DeltaBackend, so a coordinator served by server.NewBackend
// accepts the DELTA command directly.
//
// The coordinator assigns LSNs itself (per block group); clients must
// send lsn 0. The returned LSN is the largest assigned across the
// involved blocks. A delta spanning several blocks is applied per block
// independently — if one block fails mid-way the others keep the delta,
// so callers wanting atomic retries should batch per block.
func (c *Coordinator) Delta(rows []server.Row, lsn uint64) (uint64, bool, error) {
	if lsn != 0 {
		return 0, false, fmt.Errorf("shard: the coordinator assigns LSNs; retry without lsn")
	}
	if len(rows) == 0 {
		return 0, false, fmt.Errorf("shard: empty delta")
	}
	rank := len(c.sizes)
	perBlock := make(map[int][]server.Row)
	for _, row := range rows {
		if len(row.Coords) != rank {
			return 0, false, fmt.Errorf("shard: delta row has %d coordinates, schema has %d dimensions",
				len(row.Coords), rank)
		}
		owner := -1
		for b, g := range c.blocks {
			inside := true
			for j, x := range row.Coords {
				if x < g.block.Lo[j] || x >= g.block.Hi[j] {
					inside = false
					break
				}
			}
			if inside {
				owner = b
				break
			}
		}
		if owner < 0 {
			return 0, false, fmt.Errorf("shard: delta cell %v outside every block", row.Coords)
		}
		perBlock[owner] = append(perBlock[owner], row)
	}

	var (
		mu     sync.Mutex
		maxLSN uint64
		errs   []error
		wg     sync.WaitGroup
	)
	for b, part := range perBlock {
		wg.Add(1)
		go func(b int, part []server.Row) {
			defer wg.Done()
			blockLSN, err := c.deltaToGroup(c.blocks[b], part)
			if err == nil {
				// The block's replicas acknowledged: anything cached
				// over this block group is stale from here on.
				c.notifyIngest(b)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("block %s: %w", c.blocks[b].block, err))
				return
			}
			if blockLSN > maxLSN {
				maxLSN = blockLSN
			}
		}(b, part)
	}
	wg.Wait()
	if len(errs) > 0 {
		return 0, false, errors.Join(errs...)
	}
	c.stats.deltas.Inc()
	c.stats.deltaCells.Add(int64(len(rows)))
	return maxLSN, true, nil
}

// deltaToGroup logs one delta to every live replica of a block under
// the group's write lock, at LSN lastLSN+1. Application rejections (the
// replica said ERR — e.g. an overlapping delta) abort without advancing
// the LSN: validation is deterministic, so no replica applied it.
// Transport failures mark the replica down and the write proceeds on
// the rest; it succeeds if at least one replica acknowledged.
func (c *Coordinator) deltaToGroup(g *blockGroup, rows []server.Row) (uint64, error) {
	durable, total := 0, len(g.replicas)
	for _, rep := range g.replicas {
		if rep.durable {
			durable++
		}
	}
	if durable == 0 {
		return 0, fmt.Errorf("shard: replicas are not durable; ingest needs nodes started with a data dir")
	}
	if durable != total {
		return 0, fmt.Errorf("shard: %d of %d replicas are durable; mixed groups cannot ingest", durable, total)
	}

	g.writeMu.Lock()
	defer g.writeMu.Unlock()
	lsn := g.lastLSN + 1
	acks := 0
	ackers := make([]string, 0, len(g.replicas))
	var lastErr error
	for _, rep := range g.replicas {
		if rep.down.Load() {
			continue
		}
		cl, err := rep.pool.get()
		if err != nil {
			c.markDown(rep)
			lastErr = fmt.Errorf("dial %s: %w", rep.addr, err)
			continue
		}
		_, err = cl.DeltaAt(lsn, rows)
		if err != nil {
			var remote *server.RemoteError
			if errors.As(err, &remote) {
				// The replica answered: the connection is healthy and its
				// log did not advance. With no acks yet this is a clean
				// deterministic rejection; after an ack it means the
				// replica diverged from the group, so evict it.
				rep.pool.put(cl)
				if acks == 0 {
					return 0, err
				}
				c.markDown(rep)
				lastErr = fmt.Errorf("%s diverged: %w", rep.addr, err)
				continue
			}
			rep.pool.discard(cl)
			c.markDown(rep)
			lastErr = fmt.Errorf("%s: %w", rep.addr, err)
			continue
		}
		rep.pool.put(cl)
		acks++
		ackers = append(ackers, rep.addr)
	}
	if acks == 0 {
		// lastLSN stays put: nothing was acknowledged, so a retry
		// reassigns the same LSN. A replica that applied and logged the
		// delta before its ack was lost now holds an unacknowledged record
		// at this LSN while the position stays open for reassignment; that
		// replica was marked down above, and rejoin reconciles its tail
		// (truncating the orphan or divergent record) before readmitting.
		if lastErr == nil {
			lastErr = fmt.Errorf("every replica is down")
		}
		return 0, fmt.Errorf("shard: delta not acknowledged by any replica: %w", lastErr)
	}
	g.lastLSN = lsn
	// Exactly the ackers of this write hold the group's tail record.
	for addr := range g.tailAckers {
		delete(g.tailAckers, addr)
	}
	for _, addr := range ackers {
		g.tailAckers[addr] = true
	}
	return lsn, nil
}

// markDown evicts a replica from the serving set (once), so reads
// prefer its peers and the rejoin loop starts probing it.
func (c *Coordinator) markDown(rep *replica) {
	if rep.down.CompareAndSwap(false, true) {
		c.stats.replicaDowns.Inc()
	}
}

// rejoinLoop periodically probes down replicas and re-admits the ones
// it can catch up. Started by NewCoordinator when the cluster is
// durable and RejoinEvery is positive; stopped by Close.
func (c *Coordinator) rejoinLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.RejoinEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		for _, g := range c.blocks {
			for _, rep := range g.replicas {
				if rep.down.Load() {
					c.tryRejoin(g, rep)
				}
			}
		}
	}
}

// tryRejoin probes one down replica and, if reachable, reconciles its
// log tail with the group, catches it up from a live peer, and returns
// it to the serving set. Failures leave the replica down for the next
// probe — every step is idempotent.
func (c *Coordinator) tryRejoin(g *blockGroup, rep *replica) {
	cl, err := rep.pool.get()
	if err != nil {
		return
	}
	info, err := cl.ShardInfo()
	if err != nil {
		rep.pool.discard(cl)
		return
	}
	lsnField, isDurable := info["lsn"]
	if !isDurable {
		// A non-durable replica rebuilt its cube from source on restart;
		// there is no log to reconcile, it is simply back.
		rep.pool.put(cl)
		c.readmit(rep)
		return
	}
	var repLSN uint64
	if _, err := fmt.Sscanf(lsnField, "%d", &repLSN); err != nil {
		rep.pool.discard(cl)
		return
	}

	// Reconcile the tail before any catch-up: divergence, when present,
	// lives only in the replica's newest record (see the file comment),
	// and catch-up would bury it under peer records.
	g.writeMu.Lock()
	lastLSN := g.lastLSN
	trusted := g.tailAckers[rep.addr]
	g.writeMu.Unlock()
	switch {
	case repLSN > lastLSN:
		// Orphan tail: every record above the group's high-water mark was
		// never acknowledged to any client (an acked write advances
		// lastLSN before the coordinator replies, and a down replica
		// receives no writes after the snapshot above), so discarding them
		// is safe — and required, or the open positions would collide with
		// future assignments.
		if repLSN, err = c.truncateTo(cl, lastLSN); err != nil {
			rep.pool.discard(cl)
			return
		}
	case repLSN == 0 || trusted:
		// Empty log, or this replica acked the group's current tail
		// record: its content is the group's by construction.
	default:
		// The replica sits at or below the group's tail without having
		// acked the group's newest record; after a lost-ack round its own
		// newest record can differ from the group's record at the same
		// position. Compare content against a live peer.
		match, err := c.tailMatchesPeer(g, rep, cl, repLSN)
		if err != nil {
			// No live peer, a trimmed peer log, or a transport failure:
			// the tail cannot be verified, so the replica stays down
			// rather than risk serving divergent cells.
			rep.pool.discard(cl)
			return
		}
		if !match {
			if repLSN, err = c.truncateTo(cl, repLSN-1); err != nil {
				rep.pool.discard(cl)
				return
			}
		}
	}

	// Bulk catch-up outside the write lock: stream missed records from a
	// live durable peer and replay them onto the rejoiner. Ingest may
	// keep advancing the group meanwhile; the final gap closes below.
	repLSN, err = c.catchUp(g, rep, cl, repLSN)
	if err != nil {
		rep.pool.discard(cl)
		return
	}

	// Close the last gap with ingest paused, then re-admit.
	g.writeMu.Lock()
	defer g.writeMu.Unlock()
	repLSN, err = c.catchUp(g, rep, cl, repLSN)
	if err != nil || repLSN != g.lastLSN {
		rep.pool.discard(cl)
		return
	}
	// The replica now holds the group tail with peer-sourced (or
	// verified) content, which is exactly what tail-ackership asserts.
	g.tailAckers[rep.addr] = true
	rep.pool.put(cl)
	c.readmit(rep)
}

// truncateTo asks a rejoining replica to discard its log records above
// lsn and rebuild its state without them, returning its new position.
func (c *Coordinator) truncateTo(cl *server.Client, lsn uint64) (uint64, error) {
	last, err := cl.Truncate(lsn)
	if err != nil {
		return 0, err
	}
	c.stats.tailTruncates.Inc()
	return last, nil
}

// tailMatchesPeer compares a rejoining replica's newest log record
// against a live durable peer's record at the same LSN. Any failure to
// obtain either side (no live peer, trimmed logs, transport errors)
// is an error: the caller must not readmit what it cannot verify.
func (c *Coordinator) tailMatchesPeer(g *blockGroup, rep *replica, cl *server.Client, repLSN uint64) (bool, error) {
	repLogged, err := cl.DeltasSince(repLSN - 1)
	if err != nil {
		return false, err
	}
	repRecs := groupByLSN(repLogged)
	if len(repRecs) == 0 || repRecs[0].lsn != repLSN {
		return false, fmt.Errorf("shard: %s did not return its tail record %d", rep.addr, repLSN)
	}
	peer, pcl, err := c.livePeer(g, rep)
	if err != nil {
		return false, err
	}
	peerLogged, err := pcl.DeltasSince(repLSN - 1)
	if err != nil {
		peer.pool.discard(pcl)
		return false, err
	}
	peer.pool.put(pcl)
	peerRecs := groupByLSN(peerLogged)
	if len(peerRecs) == 0 || peerRecs[0].lsn != repLSN {
		return false, fmt.Errorf("shard: peer %s did not return record %d", peer.addr, repLSN)
	}
	return rowsEqual(repRecs[0].rows, peerRecs[0].rows), nil
}

// rowsEqual compares two logged records cell for cell. Both sides
// round-tripped the same wire encoding, so equality is exact.
func rowsEqual(a, b []server.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Value != b[i].Value || len(a[i].Coords) != len(b[i].Coords) {
			return false
		}
		for j := range a[i].Coords {
			if a[i].Coords[j] != b[i].Coords[j] {
				return false
			}
		}
	}
	return true
}

// readmit returns a replica to the serving set (once).
func (c *Coordinator) readmit(rep *replica) {
	if rep.down.CompareAndSwap(true, false) {
		c.stats.rejoins.Inc()
	}
}

// livePeer finds a live durable peer of rep in g and returns a pooled
// client for it; the caller returns the client to peer.pool.
func (c *Coordinator) livePeer(g *blockGroup, rep *replica) (*replica, *server.Client, error) {
	for _, p := range g.replicas {
		if p == rep || !p.durable || p.down.Load() {
			continue
		}
		pcl, err := p.pool.get()
		if err != nil {
			continue
		}
		return p, pcl, nil
	}
	return nil, nil, fmt.Errorf("shard: no live durable peer for block %s", g.block)
}

// catchUp streams the records above lsn from a live durable peer of g
// and replays them record-by-record onto the rejoining replica's client
// cl, returning the replica's new log position. With no live peer it
// returns lsn unchanged (the caller's high-water check decides whether
// that suffices).
func (c *Coordinator) catchUp(g *blockGroup, rep *replica, cl *server.Client, lsn uint64) (uint64, error) {
	peer, pcl, err := c.livePeer(g, rep)
	if err != nil {
		return lsn, nil // no peer reachable; caller's LSN check decides
	}
	logged, err := pcl.DeltasSince(lsn)
	if err != nil {
		peer.pool.discard(pcl)
		return lsn, nil
	}
	peer.pool.put(pcl)
	for _, rec := range groupByLSN(logged) {
		if rec.lsn <= lsn {
			continue
		}
		if _, err := cl.DeltaAt(rec.lsn, rec.rows); err != nil {
			return lsn, err
		}
		lsn = rec.lsn
		c.stats.catchupRecords.Inc()
	}
	return lsn, nil
}

// loggedRecord is one WAL record reassembled from a DELTASINCE stream.
type loggedRecord struct {
	lsn  uint64
	rows []server.Row
}

// groupByLSN reassembles the flat rows of a DELTASINCE reply into
// records: consecutive rows sharing an LSN were logged together.
func groupByLSN(rows []server.LoggedRow) []loggedRecord {
	var recs []loggedRecord
	for _, r := range rows {
		if n := len(recs); n > 0 && recs[n-1].lsn == r.LSN {
			recs[n-1].rows = append(recs[n-1].rows, r.Row)
			continue
		}
		recs = append(recs, loggedRecord{lsn: r.LSN, rows: []server.Row{r.Row}})
	}
	return recs
}
