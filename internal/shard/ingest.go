package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"parcube/internal/server"
)

// This file is the coordinator's write path and rejoin protocol.
//
// Ingest keeps a block's replicas in lockstep: every replica of a block
// logs the same delta under the same LSN, assigned by the coordinator
// under the group's writeMu. A replica that fails a write (transport
// error, not an application rejection) is marked down — out of the
// scatter-gather read set — and a background loop later re-admits it:
// probe its SHARDINFO for the recovered WAL position, reconcile its log
// tail with the group (below), stream the missed records from a live
// peer with DELTASINCE, replay them onto the rejoiner with DELTA-at-LSN
// (idempotent, so repeats are harmless), and only when the replica has
// caught up to the group's high-water mark under writeMu does it return
// to the read set.
//
// Tail reconciliation exists because a lost ack can leave a down
// replica's log DIVERGENT, not merely behind: the replica applies and
// logs delta D1 at LSN N, the ack never arrives, and with no other acker
// that round lastLSN stays at N-1 — so the next (different) delta D2 is
// assigned the same LSN N on the live replicas. Matching log positions
// then no longer imply matching content. The invariant that makes repair
// cheap is that divergence can only live in a contiguous SUFFIX of the
// replica's log: a down replica receives no lockstep writes, every
// earlier record was either acked by it or copied from a peer, and
// catch-up only appends. A lost single-delta ack leaves at most one
// divergent record; a lost DELTABATCH ack leaves up to a whole batch of
// them, but still only as the newest run — the batch was logged in one
// go and nothing landed after it. So before any catch-up, rejoin
// classifies the tail: records above the group's high-water mark were
// never acknowledged to any client and are truncated outright; a tail
// AT a group-assigned position is trusted only if this replica is a
// known tail acker, and otherwise its content is reconciled against a
// live peer — walking down from the replica's newest record to the
// highest position whose content the peer confirms, and truncating
// everything above it (TRUNCATE rebuilds the replica's state from
// checkpoint + surviving log) so catch-up resupplies the group's true
// history. When no live peer exists to compare against, or a divergent
// record is already baked into the replica's newest checkpoint
// (TRUNCATE answers ERR with recovery's ErrBelowCheckpoint), the
// replica stays down rather than risk readmitting divergent state.
//
// Ingest itself group-commits: concurrent deltas for the same block
// queue behind a leader (the first arrival; leadership hands off to the
// head of the queue after every round, mirroring the WAL's commit
// queue), and the leader ships the whole run to each replica as ONE
// DELTABATCH — one round trip and one fsync per replica per round
// instead of per delta — while assigning the same dense per-group LSNs
// lockstep single-delta ingest would have.

// Delta applies one delta through the cluster: rows are validated
// against the schema, split by owning block, and each involved block
// group logs them in replica lockstep. It implements
// server.DeltaBackend, so a coordinator served by server.NewBackend
// accepts the DELTA command directly.
//
// The coordinator assigns LSNs itself (per block group); clients must
// send lsn 0. The returned LSN is the largest assigned across the
// involved blocks. A delta spanning several blocks is applied per block
// independently — if one block fails mid-way the others keep the delta,
// so callers wanting atomic retries should batch per block.
func (c *Coordinator) Delta(rows []server.Row, lsn uint64) (uint64, bool, error) {
	if lsn != 0 {
		return 0, false, fmt.Errorf("shard: the coordinator assigns LSNs; retry without lsn")
	}
	maxLSN, err := c.ingestRows(rows, 0)
	if err != nil {
		return 0, false, err
	}
	c.stats.deltas.Inc()
	c.stats.deltaCells.Add(int64(len(rows)))
	return maxLSN, true, nil
}

// errGroupRetired is the typed refusal a split cutover leaves behind: a
// writer that routed rows against a topology snapshot the cutover has
// since replaced re-splits them against the fresh topology and retries.
// The cutover drained the parent's tail into the children before
// retiring it, so the retried rows land exactly once.
var errGroupRetired = errors.New("shard: block group retired by a split cutover")

// maxRetiredRetries bounds how many topology swaps one delta will chase.
// Each retry needs a fresh split cutover of the very group the rows
// landed in, so the bound is never reached outside pathological churn.
const maxRetiredRetries = 4

// ingestRows splits rows by owning block against the current topology
// and commits each part to its group in replica lockstep. A part
// refused with errGroupRetired lost a race with a split cutover and is
// re-routed against the then-current topology.
func (c *Coordinator) ingestRows(rows []server.Row, depth int) (uint64, error) {
	if depth > maxRetiredRetries {
		return 0, fmt.Errorf("shard: delta re-routed through %d topology changes without landing", depth)
	}
	groups := c.groups()
	perBlock, err := c.splitByBlock(groups, rows)
	if err != nil {
		return 0, err
	}

	var (
		mu     sync.Mutex
		maxLSN uint64
		errs   []error
		wg     sync.WaitGroup
	)
	for b, part := range perBlock {
		wg.Add(1)
		go func(g *blockGroup, part []server.Row) {
			defer wg.Done()
			blockLSN, err := c.ingestGroup(g, part)
			if errors.Is(err, errGroupRetired) {
				blockLSN, err = c.ingestRows(part, depth+1)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("block %s: %w", g.block, err))
				return
			}
			if blockLSN > maxLSN {
				maxLSN = blockLSN
			}
		}(groups[b], part)
	}
	wg.Wait()
	if len(errs) > 0 {
		return 0, errors.Join(errs...)
	}
	return maxLSN, nil
}

// DeltaBatch applies a run of deltas through the cluster in one call.
// It implements server.DeltaBatchBackend, so a coordinator served by
// server.NewBackend accepts DELTABATCH directly. Every record must come
// with lsn 0 (the coordinator assigns per-group LSNs); records are
// split by owning block like single deltas and enqueued in record
// order, so each block group assigns its records ascending LSNs and the
// batched run produces exactly the LSN sequence lockstep single-delta
// ingest would. Records are applied independently (a rejected record
// does not retract its predecessors); the reply counts fully applied
// records and reports the first failure by its batch index.
func (c *Coordinator) DeltaBatch(recs []server.LoggedDelta) (uint64, int, error) {
	if len(recs) == 0 {
		return 0, 0, fmt.Errorf("shard: empty delta batch")
	}
	type pending struct {
		rec int
		g   *blockGroup
		req *ingestReq
	}
	groups := c.groups() // one topology snapshot routes the whole batch
	var (
		waits   []pending
		elected []*blockGroup // groups whose queue this call must lead
		leading = make(map[*blockGroup]bool)
	)
	recErr := make([]error, len(recs))
	for i, rec := range recs {
		if rec.LSN != 0 {
			return 0, 0, fmt.Errorf("shard: batch record %d: the coordinator assigns LSNs; retry without lsn", i)
		}
		perBlock, err := c.splitByBlock(groups, rec.Rows)
		if err != nil {
			return 0, 0, fmt.Errorf("shard: batch record %d: %w", i, err)
		}
		// Enqueue this record on every involved group before looking at
		// the next record: per-group queue order is assignment order, so
		// record order in the batch is LSN order in each group.
		for b, part := range perBlock {
			g := groups[b]
			req, lead := g.enqueueIngest(part)
			waits = append(waits, pending{rec: i, g: g, req: req})
			if lead && !leading[g] {
				leading[g] = true
				elected = append(elected, g)
			}
		}
	}
	for _, g := range elected {
		c.leadIngest(g)
	}
	var maxLSN uint64
	for _, p := range waits {
		lsn, err := c.awaitIngest(p.g, p.req, false)
		if errors.Is(err, errGroupRetired) {
			// A split cutover replaced the group mid-batch: re-route this
			// record's part against the fresh topology (the cutover drained
			// the parent first, so nothing lands twice).
			lsn, err = c.ingestRows(p.req.rows, 1)
		}
		if err != nil && recErr[p.rec] == nil {
			recErr[p.rec] = fmt.Errorf("batch record %d: block %s: %w", p.rec, p.g.block, err)
		}
		if lsn > maxLSN {
			maxLSN = lsn
		}
	}
	applied := 0
	var firstErr error
	cells := 0
	for i, err := range recErr {
		if err == nil {
			applied++
			cells += len(recs[i].Rows)
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if applied > 0 {
		c.stats.deltas.Add(int64(applied))
		c.stats.deltaCells.Add(int64(cells))
	}
	return maxLSN, applied, firstErr
}

// splitByBlock validates rows against the schema and partitions them by
// owning block group index within the given topology snapshot.
func (c *Coordinator) splitByBlock(groups []*blockGroup, rows []server.Row) (map[int][]server.Row, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("shard: empty delta")
	}
	rank := len(c.sizes)
	perBlock := make(map[int][]server.Row)
	for _, row := range rows {
		if len(row.Coords) != rank {
			return nil, fmt.Errorf("shard: delta row has %d coordinates, schema has %d dimensions",
				len(row.Coords), rank)
		}
		owner := -1
		for b, g := range groups {
			inside := true
			for j, x := range row.Coords {
				if x < g.block.Lo[j] || x >= g.block.Hi[j] {
					inside = false
					break
				}
			}
			if inside {
				owner = b
				break
			}
		}
		if owner < 0 {
			return nil, fmt.Errorf("shard: delta cell %v outside every block", row.Coords)
		}
		perBlock[owner] = append(perBlock[owner], row)
	}
	return perBlock, nil
}

// ingestReq is one delta waiting in a block group's commit queue. The
// committing leader fills lsn/err and closes done; a waiter whose lead
// channel closes instead has been promoted to lead the next round.
type ingestReq struct {
	rows []server.Row
	lsn  uint64
	err  error
	done chan struct{}
	lead chan struct{}
}

// ingestGroup queues one delta for a block group and waits for the
// group's commit leader (possibly this caller) to ship it.
func (c *Coordinator) ingestGroup(g *blockGroup, rows []server.Row) (uint64, error) {
	req, elected := g.enqueueIngest(rows)
	return c.awaitIngest(g, req, elected)
}

// enqueueIngest appends one record to the group's commit queue and
// reports whether the caller was elected leader (the queue was idle).
func (g *blockGroup) enqueueIngest(rows []server.Row) (*ingestReq, bool) {
	req := &ingestReq{rows: rows, done: make(chan struct{}), lead: make(chan struct{})}
	g.imu.Lock()
	g.iqueue = append(g.iqueue, req)
	elected := !g.ileader
	if elected {
		g.ileader = true
	}
	g.imu.Unlock()
	return req, elected
}

// awaitIngest blocks until req commits, leading the group's queue first
// when elected at enqueue (or promoted while waiting).
func (c *Coordinator) awaitIngest(g *blockGroup, req *ingestReq, elected bool) (uint64, error) {
	if elected {
		c.leadIngest(g)
	} else {
		select {
		case <-req.done:
		case <-req.lead:
			c.leadIngest(g)
		}
	}
	<-req.done
	return req.lsn, req.err
}

// leadIngest drains the group's queue, commits the run to the replicas,
// wakes the waiters, and hands leadership to the head of whatever
// queued up meanwhile (the queue refills while the round's network I/O
// and fsyncs are in flight — that is what grows the groups).
func (c *Coordinator) leadIngest(g *blockGroup) {
	g.imu.Lock()
	batch := g.iqueue
	g.iqueue = nil
	g.imu.Unlock()
	if len(batch) > 0 {
		c.commitToGroup(g, batch)
		for _, req := range batch {
			close(req.done)
		}
	}
	g.imu.Lock()
	if len(g.iqueue) == 0 {
		g.ileader = false
		g.imu.Unlock()
		return
	}
	next := g.iqueue[0]
	g.imu.Unlock()
	close(next.lead)
}

// commitToGroup ships one queued run to every live replica of a block
// under the group's write lock, filling each request's lsn/err. A run
// of one uses the single-delta wire path; longer runs go out as one
// DELTABATCH per replica — one round trip and one fsync covering the
// whole run — with the same per-record LSNs lockstep assignment would
// produce. The group's cache-invalidation hooks fire once per committed
// run per block.
func (c *Coordinator) commitToGroup(g *blockGroup, batch []*ingestReq) {
	reps := g.replicaList()
	durable, total := 0, len(reps)
	for _, rep := range reps {
		if rep.durable {
			durable++
		}
	}
	var durableErr error
	if durable == 0 {
		durableErr = fmt.Errorf("shard: replicas are not durable; ingest needs nodes started with a data dir")
	} else if durable != total {
		durableErr = fmt.Errorf("shard: %d of %d replicas are durable; mixed groups cannot ingest", durable, total)
	}
	if durableErr != nil {
		for _, req := range batch {
			req.err = durableErr
		}
		return
	}

	g.writeMu.Lock()
	defer g.writeMu.Unlock()
	if g.retired {
		// A split cutover retired this group after the writer routed to it;
		// the cutover drained the parent tail first, so refusing here and
		// letting the writer re-route against the fresh topology is exact.
		for _, req := range batch {
			req.err = errGroupRetired
		}
		return
	}
	c.stats.ingestBatch.Observe(int64(len(batch)))
	if len(batch) == 1 {
		batch[0].lsn, batch[0].err = c.recordToGroupLocked(g, batch[0].rows)
		if batch[0].err == nil {
			c.notifyIngest(g)
		}
		return
	}

	base := g.lastLSN
	recs := make([]server.LoggedDelta, len(batch))
	for i, req := range batch {
		recs[i] = server.LoggedDelta{LSN: base + 1 + uint64(i), Rows: req.rows}
	}
	acks := 0
	ackers := make([]string, 0, len(reps))
	var lastErr error
	for _, rep := range reps {
		if rep.down.Load() {
			continue
		}
		cl, err := rep.pool.get()
		if err != nil {
			c.markDown(rep)
			lastErr = fmt.Errorf("dial %s: %w", rep.addr, err)
			continue
		}
		_, _, err = cl.DeltaBatch(recs)
		if err != nil {
			var remote *server.RemoteError
			if errors.As(err, &remote) {
				// The replica answered: some record was deterministically
				// rejected, and the replica applied AND durably logged the
				// records before it. With no acks yet, replay the run
				// record by record so the bad record fails alone — the
				// idempotent per-record LSN checks turn the re-sent prefix
				// into no-ops on this replica and fresh applies on its
				// peers. After an ack a rejection means this replica
				// diverged from the group, so evict it.
				rep.pool.put(cl)
				if acks == 0 {
					c.lockstepFallbackLocked(g, batch)
					return
				}
				c.markDown(rep)
				lastErr = fmt.Errorf("%s diverged: %w", rep.addr, err)
				continue
			}
			rep.pool.discard(cl)
			c.markDown(rep)
			lastErr = fmt.Errorf("%s: %w", rep.addr, err)
			continue
		}
		rep.pool.put(cl)
		acks++
		ackers = append(ackers, rep.addr)
	}
	if acks == 0 {
		// lastLSN stays put: nothing was acknowledged, so a retry
		// reassigns the same positions. A replica that logged the batch
		// before its ack was lost now holds up to len(batch)
		// unacknowledged records while the positions stay open for
		// reassignment; it was marked down above, and rejoin reconciles
		// its tail (truncating the orphaned or divergent suffix) before
		// readmitting.
		if lastErr == nil {
			lastErr = fmt.Errorf("every replica is down")
		}
		err := fmt.Errorf("shard: delta batch not acknowledged by any replica: %w", lastErr)
		for _, req := range batch {
			req.err = err
		}
		return
	}
	g.lastLSN = base + uint64(len(batch))
	// Exactly the ackers of this run hold the group's tail record.
	for addr := range g.tailAckers {
		delete(g.tailAckers, addr)
	}
	for _, addr := range ackers {
		g.tailAckers[addr] = true
	}
	for i, req := range batch {
		req.lsn = base + 1 + uint64(i)
	}
	c.notifyIngest(g)
}

// lockstepFallbackLocked replays a queued run record by record after a
// replica rejected the batched form: validation is deterministic, so
// the rejected record fails alone (without advancing the group LSN)
// while its neighbours land at exactly the positions per-record ingest
// would have assigned them.
func (c *Coordinator) lockstepFallbackLocked(g *blockGroup, batch []*ingestReq) {
	applied := false
	for _, req := range batch {
		req.lsn, req.err = c.recordToGroupLocked(g, req.rows)
		if req.err == nil {
			applied = true
		}
	}
	if applied {
		c.notifyIngest(g)
	}
}

// recordToGroupLocked logs one delta to every live replica of a block
// at LSN lastLSN+1; the caller holds the group's write lock. Application
// rejections (the replica said ERR — e.g. an overlapping delta) abort
// without advancing the LSN: validation is deterministic, so no replica
// applied it. Transport failures mark the replica down and the write
// proceeds on the rest; it succeeds if at least one replica
// acknowledged.
func (c *Coordinator) recordToGroupLocked(g *blockGroup, rows []server.Row) (uint64, error) {
	lsn := g.lastLSN + 1
	reps := g.replicaList()
	acks := 0
	ackers := make([]string, 0, len(reps))
	var lastErr error
	for _, rep := range reps {
		if rep.down.Load() {
			continue
		}
		cl, err := rep.pool.get()
		if err != nil {
			c.markDown(rep)
			lastErr = fmt.Errorf("dial %s: %w", rep.addr, err)
			continue
		}
		_, err = cl.DeltaAt(lsn, rows)
		if err != nil {
			var remote *server.RemoteError
			if errors.As(err, &remote) {
				// The replica answered: the connection is healthy and its
				// log did not advance. With no acks yet this is a clean
				// deterministic rejection; after an ack it means the
				// replica diverged from the group, so evict it.
				rep.pool.put(cl)
				if acks == 0 {
					return 0, err
				}
				c.markDown(rep)
				lastErr = fmt.Errorf("%s diverged: %w", rep.addr, err)
				continue
			}
			rep.pool.discard(cl)
			c.markDown(rep)
			lastErr = fmt.Errorf("%s: %w", rep.addr, err)
			continue
		}
		rep.pool.put(cl)
		acks++
		ackers = append(ackers, rep.addr)
	}
	if acks == 0 {
		// lastLSN stays put: nothing was acknowledged, so a retry
		// reassigns the same LSN. A replica that applied and logged the
		// delta before its ack was lost now holds an unacknowledged record
		// at this LSN while the position stays open for reassignment; that
		// replica was marked down above, and rejoin reconciles its tail
		// (truncating the orphan or divergent record) before readmitting.
		if lastErr == nil {
			lastErr = fmt.Errorf("every replica is down")
		}
		return 0, fmt.Errorf("shard: delta not acknowledged by any replica: %w", lastErr)
	}
	g.lastLSN = lsn
	// Exactly the ackers of this write hold the group's tail record.
	for addr := range g.tailAckers {
		delete(g.tailAckers, addr)
	}
	for _, addr := range ackers {
		g.tailAckers[addr] = true
	}
	return lsn, nil
}

// markDown evicts a replica from the serving set (once), so reads
// prefer its peers and the rejoin loop starts probing it.
func (c *Coordinator) markDown(rep *replica) {
	if rep.down.CompareAndSwap(false, true) {
		c.stats.replicaDowns.Inc()
	}
}

// rejoinLoop periodically probes down replicas and re-admits the ones
// it can catch up. Started by NewCoordinator when the cluster is
// durable and RejoinEvery is positive; stopped by Close.
func (c *Coordinator) rejoinLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.RejoinEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		for _, g := range c.groups() {
			for _, rep := range g.replicaList() {
				if rep.down.Load() {
					c.tryRejoin(g, rep)
				}
			}
		}
	}
}

// tryRejoin probes one down replica and, if reachable, reconciles its
// log tail with the group, catches it up from a live peer, and returns
// it to the serving set. Failures leave the replica down for the next
// probe — every step is idempotent.
func (c *Coordinator) tryRejoin(g *blockGroup, rep *replica) {
	cl, err := rep.pool.get()
	if err != nil {
		return
	}
	info, err := cl.ShardInfo()
	if err != nil {
		rep.pool.discard(cl)
		return
	}
	lsnField, isDurable := info["lsn"]
	if !isDurable {
		// A non-durable replica rebuilt its cube from source on restart;
		// there is no log to reconcile, it is simply back.
		rep.pool.put(cl)
		c.readmit(rep)
		return
	}
	var repLSN uint64
	if _, err := fmt.Sscanf(lsnField, "%d", &repLSN); err != nil {
		rep.pool.discard(cl)
		return
	}

	// Reconcile the tail before any catch-up: divergence, when present,
	// lives only in the replica's newest record (see the file comment),
	// and catch-up would bury it under peer records.
	g.writeMu.Lock()
	lastLSN := g.lastLSN
	trusted := g.tailAckers[rep.addr]
	g.writeMu.Unlock()
	switch {
	case repLSN > lastLSN:
		// Orphan tail: every record above the group's high-water mark was
		// never acknowledged to any client (an acked write advances
		// lastLSN before the coordinator replies, and a down replica
		// receives no writes after the snapshot above), so discarding them
		// is safe — and required, or the open positions would collide with
		// future assignments.
		if repLSN, err = c.truncateTo(cl, lastLSN); err != nil {
			rep.pool.discard(cl)
			return
		}
	case repLSN == 0 || trusted:
		// Empty log, or this replica acked the group's current tail
		// record: its content is the group's by construction.
	default:
		// The replica sits at or below the group's tail without having
		// acked the group's newest record; after a lost-ack round a
		// contiguous suffix of its log — one record for a lost single
		// delta, up to a whole batch for a lost DELTABATCH — can differ
		// from the group's records at the same positions. Walk down to
		// the highest position a live peer confirms and cut everything
		// above it.
		if repLSN, err = c.reconcileTail(g, rep, cl, repLSN); err != nil {
			// No live peer, a trimmed peer log, or a transport failure:
			// the tail cannot be verified, so the replica stays down
			// rather than risk serving divergent cells.
			rep.pool.discard(cl)
			return
		}
	}

	// Bulk catch-up outside the write lock: stream missed records from a
	// live durable peer and replay them onto the rejoiner. Ingest may
	// keep advancing the group meanwhile; the final gap closes below.
	repLSN, err = c.catchUp(g, rep, cl, repLSN)
	if err != nil {
		rep.pool.discard(cl)
		return
	}

	// Close the last gap with ingest paused, then re-admit.
	g.writeMu.Lock()
	defer g.writeMu.Unlock()
	repLSN, err = c.catchUp(g, rep, cl, repLSN)
	if err != nil || repLSN != g.lastLSN {
		rep.pool.discard(cl)
		return
	}
	// The replica now holds the group tail with peer-sourced (or
	// verified) content, which is exactly what tail-ackership asserts.
	g.tailAckers[rep.addr] = true
	rep.pool.put(cl)
	c.readmit(rep)
}

// truncateTo asks a rejoining replica to discard its log records above
// lsn and rebuild its state without them, returning its new position.
func (c *Coordinator) truncateTo(cl *server.Client, lsn uint64) (uint64, error) {
	last, err := cl.Truncate(lsn)
	if err != nil {
		return 0, err
	}
	c.stats.tailTruncates.Inc()
	return last, nil
}

// reconcileTail verifies a rejoining replica's log suffix against a
// live durable peer and truncates whatever the peer disowns. Divergence
// is always a contiguous suffix (see the file comment), so the repair
// is: walk down from the replica's newest record to the HIGHEST LSN
// whose content the peer confirms and truncate the replica to it. The
// comparison window grows geometrically — a lost single-delta ack
// diverges one record, a lost batch ack up to a whole batch — and any
// record the window needs that either side cannot produce (no live
// peer, trimmed logs, transport errors) is an error: the caller must
// not readmit what it cannot verify. Returns the replica's reconciled
// log position.
func (c *Coordinator) reconcileTail(g *blockGroup, rep *replica, cl *server.Client, repLSN uint64) (uint64, error) {
	peer, pcl, err := c.livePeer(g, rep)
	if err != nil {
		return 0, err
	}
	peerOK := false
	defer func() {
		if peerOK {
			peer.pool.put(pcl)
		} else {
			peer.pool.discard(pcl)
		}
	}()
	for step := uint64(4); ; step *= 8 {
		lo := uint64(0)
		if repLSN > step {
			lo = repLSN - step
		}
		peerOK = false
		repRecs, err := recordsByLSN(cl.DeltasSince(lo))
		if err != nil {
			peerOK = true // the replica's side failed; the peer is untouched
			return 0, err
		}
		peerRecs, err := recordsByLSN(pcl.DeltasSince(lo))
		if err != nil {
			return 0, err
		}
		peerOK = true
		for j := repLSN; j > lo; j-- {
			rrows, rok := repRecs[j]
			prows, pok := peerRecs[j]
			if !rok || !pok {
				// A log trimmed into the comparison window (the record is
				// baked into a checkpoint): the suffix cannot be verified.
				return 0, fmt.Errorf("shard: record %d unavailable for tail comparison (replica %s: %v, peer %s: %v)",
					j, rep.addr, rok, peer.addr, pok)
			}
			if rowsEqual(rrows, prows) {
				if j == repLSN {
					return repLSN, nil // the whole tail is the group's
				}
				return c.truncateTo(cl, j)
			}
		}
		if lo == 0 {
			// Every record down to the replica's first disagrees with the
			// group: nothing verifiable survives.
			return c.truncateTo(cl, 0)
		}
	}
}

// recordsByLSN indexes a DELTASINCE stream by record LSN, passing
// through the fetch error so calls compose.
func recordsByLSN(rows []server.LoggedRow, err error) (map[uint64][]server.Row, error) {
	if err != nil {
		return nil, err
	}
	recs := make(map[uint64][]server.Row)
	for _, rec := range groupByLSN(rows) {
		recs[rec.lsn] = rec.rows
	}
	return recs, nil
}

// rowsEqual compares two logged records cell for cell. Both sides
// round-tripped the same wire encoding, so equality is exact.
func rowsEqual(a, b []server.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Value != b[i].Value || len(a[i].Coords) != len(b[i].Coords) {
			return false
		}
		for j := range a[i].Coords {
			if a[i].Coords[j] != b[i].Coords[j] {
				return false
			}
		}
	}
	return true
}

// readmit returns a replica to the serving set (once).
func (c *Coordinator) readmit(rep *replica) {
	if rep.down.CompareAndSwap(true, false) {
		c.stats.rejoins.Inc()
	}
}

// livePeer finds a live durable peer of rep in g and returns a pooled
// client for it; the caller returns the client to peer.pool.
func (c *Coordinator) livePeer(g *blockGroup, rep *replica) (*replica, *server.Client, error) {
	for _, p := range g.replicaList() {
		if p == rep || !p.durable || p.down.Load() {
			continue
		}
		pcl, err := p.pool.get()
		if err != nil {
			continue
		}
		return p, pcl, nil
	}
	return nil, nil, fmt.Errorf("shard: no live durable peer for block %s", g.block)
}

// catchUp streams the records above lsn from a live durable peer of g
// and replays them record-by-record onto the rejoining replica's client
// cl, returning the replica's new log position. With no live peer it
// returns lsn unchanged (the caller's high-water check decides whether
// that suffices).
func (c *Coordinator) catchUp(g *blockGroup, rep *replica, cl *server.Client, lsn uint64) (uint64, error) {
	peer, pcl, err := c.livePeer(g, rep)
	if err != nil {
		return lsn, nil // no peer reachable; caller's LSN check decides
	}
	logged, err := pcl.DeltasSince(lsn)
	if err != nil {
		peer.pool.discard(pcl)
		return lsn, nil
	}
	peer.pool.put(pcl)
	for _, rec := range groupByLSN(logged) {
		if rec.lsn <= lsn {
			continue
		}
		if _, err := cl.DeltaAt(rec.lsn, rec.rows); err != nil {
			return lsn, err
		}
		lsn = rec.lsn
		c.stats.catchupRecords.Inc()
	}
	return lsn, nil
}

// loggedRecord is one WAL record reassembled from a DELTASINCE stream.
type loggedRecord struct {
	lsn  uint64
	rows []server.Row
}

// groupByLSN reassembles the flat rows of a DELTASINCE reply into
// records: consecutive rows sharing an LSN were logged together.
func groupByLSN(rows []server.LoggedRow) []loggedRecord {
	var recs []loggedRecord
	for _, r := range rows {
		if n := len(recs); n > 0 && recs[n-1].lsn == r.LSN {
			recs[n-1].rows = append(recs[n-1].rows, r.Row)
			continue
		}
		recs = append(recs, loggedRecord{lsn: r.LSN, rows: []server.Row{r.Row}})
	}
	return recs
}
