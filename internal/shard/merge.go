package shard

import (
	"fmt"
	"sort"

	"parcube"
	"parcube/internal/agg"
	"parcube/internal/server"
)

// mergeTable is the coordinator's combined group-by: a dense row-major
// table accumulating every shard's partial aggregates. It satisfies
// server.Result, so the coordinator's server streams it exactly like a
// local cube's table.
type mergeTable struct {
	shape []int
	data  []float64
}

// newMergeTable allocates a table of the given shape filled with the
// operator's identity, so the first combined shard lands on neutral cells.
func newMergeTable(shape []int, op agg.Op) *mergeTable {
	size := 1
	for _, s := range shape {
		size *= s
	}
	t := &mergeTable{shape: append([]int(nil), shape...), data: make([]float64, size)}
	op.Fill(t.data)
	return t
}

// offsetOf converts row coordinates to the row-major offset.
func (t *mergeTable) offsetOf(coords []int) (int, error) {
	if len(coords) != len(t.shape) {
		return 0, fmt.Errorf("shard: %d coordinates for %d dimensions", len(coords), len(t.shape))
	}
	off := 0
	for i, c := range coords {
		if c < 0 || c >= t.shape[i] {
			return 0, fmt.Errorf("shard: coordinate %d out of range [0,%d)", c, t.shape[i])
		}
		off = off*t.shape[i] + c
	}
	return off, nil
}

// combineRows folds one shard's rows into the table with the operator.
func (t *mergeTable) combineRows(rows []server.Row, op agg.Op) error {
	if len(rows) != len(t.data) {
		return fmt.Errorf("shard: shard returned %d cells, expected %d", len(rows), len(t.data))
	}
	for _, r := range rows {
		off, err := t.offsetOf(r.Coords)
		if err != nil {
			return err
		}
		t.data[off] = op.Combine(t.data[off], r.Value)
	}
	return nil
}

// Shape returns the table's extents.
func (t *mergeTable) Shape() []int { return append([]int(nil), t.shape...) }

// Size returns the number of cells.
func (t *mergeTable) Size() int { return len(t.data) }

// At returns the cell at integer coordinates; like the library's dense
// tables it panics on bad coordinates (the server recovers lookups).
func (t *mergeTable) At(coords ...int) float64 {
	off, err := t.offsetOf(coords)
	if err != nil {
		panic(err.Error())
	}
	return t.data[off]
}

// Top returns the k largest cells, ties broken by ascending coordinates —
// the same contract as parcube.Table.Top, so sharded TOP answers match a
// single-node cube row for row.
func (t *mergeTable) Top(k int) []parcube.CellValue {
	out := make([]parcube.CellValue, 0, len(t.data))
	coords := make([]int, len(t.shape))
	for off := range t.data {
		out = append(out, parcube.CellValue{
			Coords: append([]int(nil), coords...),
			Value:  t.data[off],
		})
		for i := len(coords) - 1; i >= 0; i-- {
			coords[i]++
			if coords[i] < t.shape[i] {
				break
			}
			coords[i] = 0
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Value > out[j].Value })
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// shapeFromRows infers the table shape from one shard's full row-major
// enumeration: the last row holds the maximal coordinates. A single row
// with no coordinates is the 0-D grand total.
func shapeFromRows(rows []server.Row) ([]int, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("shard: shard returned no cells")
	}
	last := rows[len(rows)-1].Coords
	shape := make([]int, len(last))
	size := 1
	for i, c := range last {
		shape[i] = c + 1
		size *= shape[i]
	}
	if size != len(rows) {
		return nil, fmt.Errorf("shard: shard returned %d cells for inferred shape %v", len(rows), shape)
	}
	return shape, nil
}
