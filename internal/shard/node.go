package shard

import (
	"errors"
	"fmt"

	"parcube"
	"parcube/internal/nd"
	"parcube/internal/obs"
	"parcube/internal/server"
)

// Node is one shard server: the cube of one block of the global fact
// table, served over the standard line protocol plus the SHARDINFO
// handshake a coordinator discovers the topology with.
type Node struct {
	// ID is the node's index in the plan; Block the global sub-box whose
	// facts its cube aggregates. Cube is the state at startup — durable
	// nodes can replace their live cube at runtime (a coordinator-driven
	// TRUNCATE rebuilds it from checkpoint + log), so query through the
	// protocol, not this field, when truncation is in play.
	ID    int
	Block nd.Block
	Cube  *parcube.Cube

	srv  *server.Server
	addr string

	// durable and rec are set by StartDurableNode: the ingesting backend
	// with its WAL/checkpoint manager, and its recovery metrics registry.
	durable *durableBackend
	rec     *obs.Registry
}

// StartNode carves node id's block out of the dataset, builds its
// sub-cube, and serves it on addr (use "127.0.0.1:0" for an ephemeral
// port). The sub-cube keeps the full schema at global coordinates, so its
// group-by tables align cell-for-cell with every other shard's and with
// the unsharded cube.
func StartNode(plan *Plan, id int, ds *parcube.Dataset, addr string, opts ...parcube.BuildOption) (*Node, error) {
	block, err := plan.BlockOfNode(id)
	if err != nil {
		return nil, err
	}
	sub, err := ds.Shard(block.Lo, block.Hi)
	if err != nil {
		return nil, fmt.Errorf("shard: node %d: %w", id, err)
	}
	cube, _, err := parcube.Build(sub, opts...)
	if err != nil {
		return nil, fmt.Errorf("shard: node %d build: %w", id, err)
	}
	return ServeNode(cube, id, block, addr)
}

// ServeNode serves an already-built block sub-cube as shard node id.
func ServeNode(cube *parcube.Cube, id int, block nd.Block, addr string) (*Node, error) {
	n := &Node{ID: id, Block: block, Cube: cube, srv: server.New(cube)}
	n.srv.SetShardInfo(server.ShardInfo{
		ID:    id,
		Op:    cube.Aggregator().String(),
		Block: block.String(),
	})
	bound, err := n.srv.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("shard: node %d listen: %w", id, err)
	}
	n.addr = bound
	return n, nil
}

// Addr returns the node's bound address.
func (n *Node) Addr() string { return n.addr }

// Metrics returns the node server's per-command metrics registry.
func (n *Node) Metrics() *obs.Registry { return n.srv.Metrics() }

// Close stops the node's server and, for durable nodes, flushes and
// closes the WAL — the clean-shutdown counterpart of Crash.
//
//cubelint:ignore lock-order the final fsync on close runs under the backend lock so no delta can race the shutdown
func (n *Node) Close() error {
	err := n.srv.Close()
	if n.durable != nil {
		n.durable.mu.Lock()
		cerr := n.durable.mgr.Close()
		n.durable.mu.Unlock()
		return errors.Join(err, cerr)
	}
	return err
}
