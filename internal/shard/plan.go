// Package shard is the distributed serving tier for constructed cubes: a
// planner that block-partitions the array over a set of shard nodes with
// replication, shard nodes that serve one block's sub-cube each over the
// internal/server line protocol, and a coordinator that answers the same
// protocol by scatter-gathering the shards and combining their partial
// aggregates cell-exactly.
//
// The layout reuses the paper's own partitioning machinery: the Theorem 8
// greedy partitioner picks how many times to cut each dimension, and the
// mixed-radix block decomposition of internal/nd assigns each shard an
// axis-aligned sub-box of the global array. Because every aggregation
// operator is associative and commutative (internal/agg), the blocks'
// group-by tables combine element-wise into exactly the unsharded cube —
// the same partition-then-merge argument the parallel builder relies on.
package shard

import (
	"fmt"
	"strconv"
	"strings"

	"parcube"
	"parcube/internal/nd"
)

// Plan assigns block sub-cubes to shard nodes.
type Plan struct {
	// Names and Sizes are the schema, in schema order.
	Names []string
	Sizes nd.Shape
	// K is log2 of the slice count per dimension (schema order), chosen by
	// the Theorem 8 greedy partitioner; Parts[j] = 2^K[j].
	K     []int
	Parts []int
	// Blocks lists the block sub-boxes, in row-major grid order; block b is
	// served by the nodes in Owners[b], primary first.
	Blocks []nd.Block
	Owners [][]int
	// Nodes and Replicas echo the request: Nodes shard nodes, each block on
	// at least Replicas of them.
	Nodes    int
	Replicas int
}

// NewPlan partitions the schema's array into the largest power-of-two
// number of blocks that still fits every block on `replicas` distinct
// nodes, using the communication-optimal greedy partitioner to choose
// which dimensions to cut. Nodes are dealt to blocks round-robin (node n
// serves block n mod B), so every node serves exactly one block and every
// block has at least `replicas` owners.
func NewPlan(names []string, sizes []int, nodes, replicas int) (*Plan, error) {
	if len(names) != len(sizes) {
		return nil, fmt.Errorf("shard: %d names for %d sizes", len(names), len(sizes))
	}
	if replicas < 1 {
		return nil, fmt.Errorf("shard: replication factor %d < 1", replicas)
	}
	if nodes < replicas {
		return nil, fmt.Errorf("shard: %d nodes cannot hold %d replicas of every block", nodes, replicas)
	}
	shape, err := nd.NewShape(sizes...)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}

	// The largest feasible power-of-two block count: capped by the node
	// budget, then shrunk until the array is actually sliceable that many
	// ways (tiny dimensions may not be).
	logB := 0
	for (1<<uint(logB+1))*replicas <= nodes {
		logB++
	}
	var k []int
	for {
		k, _, err = parcube.PlanPartition(sizes, 1<<uint(logB))
		if err == nil {
			break
		}
		if logB == 0 {
			return nil, fmt.Errorf("shard: %w", err)
		}
		logB--
	}
	parts := make([]int, len(k))
	numBlocks := 1
	for j, kj := range k {
		parts[j] = 1 << uint(kj)
		numBlocks *= parts[j]
	}

	p := &Plan{
		Names:    append([]string(nil), names...),
		Sizes:    shape,
		K:        k,
		Parts:    parts,
		Nodes:    nodes,
		Replicas: replicas,
	}
	grid := make([]int, len(parts))
	for b := 0; b < numBlocks; b++ {
		rem := b
		for j := len(parts) - 1; j >= 0; j-- {
			grid[j] = rem % parts[j]
			rem /= parts[j]
		}
		blk, err := nd.BlockOf(shape, parts, grid)
		if err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
		p.Blocks = append(p.Blocks, blk)
	}
	p.Owners = make([][]int, numBlocks)
	for n := 0; n < nodes; n++ {
		b := n % numBlocks
		p.Owners[b] = append(p.Owners[b], n)
	}
	return p, nil
}

// NumBlocks returns the number of distinct blocks.
func (p *Plan) NumBlocks() int { return len(p.Blocks) }

// Schema rebuilds the parcube schema the plan was computed for — the
// base state of a durable node restarting without its source dataset.
func (p *Plan) Schema() (*parcube.Schema, error) {
	dims := make([]parcube.Dim, len(p.Names))
	for i := range dims {
		dims[i] = parcube.Dim{Name: p.Names[i], Size: p.Sizes[i]}
	}
	return parcube.NewSchema(dims...)
}

// BlockOfNode returns the block a node serves.
func (p *Plan) BlockOfNode(node int) (nd.Block, error) {
	if node < 0 || node >= p.Nodes {
		return nd.Block{}, fmt.Errorf("shard: node %d out of range [0,%d)", node, p.Nodes)
	}
	return p.Blocks[node%len(p.Blocks)], nil
}

// String summarizes the plan for logs.
func (p *Plan) String() string {
	return fmt.Sprintf("shard plan: %d nodes, %d blocks (parts %v), replication >= %d",
		p.Nodes, len(p.Blocks), p.Parts, p.Replicas)
}

// ParseBlock parses the nd.Block rendering "[lo:hi,lo:hi,...]" exchanged
// by the SHARDINFO handshake.
func ParseBlock(s string) (nd.Block, error) {
	trimmed := strings.TrimSpace(s)
	if len(trimmed) < 2 || trimmed[0] != '[' || trimmed[len(trimmed)-1] != ']' {
		return nd.Block{}, fmt.Errorf("shard: malformed block %q", s)
	}
	var lo, hi []int
	for _, part := range strings.Split(trimmed[1:len(trimmed)-1], ",") {
		bounds := strings.Split(part, ":")
		if len(bounds) != 2 {
			return nd.Block{}, fmt.Errorf("shard: malformed block range %q", part)
		}
		l, err := strconv.Atoi(strings.TrimSpace(bounds[0]))
		if err != nil {
			return nd.Block{}, fmt.Errorf("shard: malformed block bound %q", bounds[0])
		}
		h, err := strconv.Atoi(strings.TrimSpace(bounds[1]))
		if err != nil {
			return nd.Block{}, fmt.Errorf("shard: malformed block bound %q", bounds[1])
		}
		lo = append(lo, l)
		hi = append(hi, h)
	}
	if len(lo) == 0 {
		return nd.Block{}, fmt.Errorf("shard: empty block %q", s)
	}
	return nd.NewBlock(lo, hi), nil
}
