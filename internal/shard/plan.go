// Package shard is the distributed serving tier for constructed cubes: a
// planner that block-partitions the array over a set of shard nodes with
// replication, shard nodes that serve one block's sub-cube each over the
// internal/server line protocol, and a coordinator that answers the same
// protocol by scatter-gathering the shards and combining their partial
// aggregates cell-exactly.
//
// The layout reuses the paper's own partitioning machinery: the Theorem 8
// greedy partitioner picks how many times to cut each dimension, and the
// mixed-radix block decomposition of internal/nd assigns each shard an
// axis-aligned sub-box of the global array. Because every aggregation
// operator is associative and commutative (internal/agg), the blocks'
// group-by tables combine element-wise into exactly the unsharded cube —
// the same partition-then-merge argument the parallel builder relies on.
package shard

import (
	"fmt"
	"strconv"
	"strings"

	"parcube"
	"parcube/internal/nd"
)

// Plan assigns block sub-cubes to shard nodes.
type Plan struct {
	// Names and Sizes are the schema, in schema order.
	Names []string
	Sizes nd.Shape
	// K is log2 of the slice count per dimension (schema order), chosen by
	// the Theorem 8 greedy partitioner; Parts[j] = 2^K[j].
	K     []int
	Parts []int
	// Blocks lists the block sub-boxes, in row-major grid order; block b is
	// served by the nodes in Owners[b], primary first.
	Blocks []nd.Block
	Owners [][]int
	// Nodes and Replicas echo the request: Nodes shard nodes, each block on
	// at least Replicas of them.
	Nodes    int
	Replicas int
	// Epoch versions the plan: NewPlan starts at 1 and every Rebalance
	// returns a successor plan with Epoch+1, so plan versions are strictly
	// monotone across the life of a cluster. The coordinator stamps its
	// serving topology with the same counter and bumps it on every
	// membership cutover.
	Epoch uint64
}

// NewPlan partitions the schema's array into the largest power-of-two
// number of blocks that still fits every block on `replicas` distinct
// nodes, using the communication-optimal greedy partitioner to choose
// which dimensions to cut. Nodes are dealt to blocks round-robin (node n
// serves block n mod B), so every node serves exactly one block and every
// block has at least `replicas` owners.
func NewPlan(names []string, sizes []int, nodes, replicas int) (*Plan, error) {
	if len(names) != len(sizes) {
		return nil, fmt.Errorf("shard: %d names for %d sizes", len(names), len(sizes))
	}
	if replicas < 1 {
		return nil, fmt.Errorf("shard: replication factor %d < 1", replicas)
	}
	if nodes < replicas {
		return nil, fmt.Errorf("shard: %d nodes cannot hold %d replicas of every block", nodes, replicas)
	}
	shape, err := nd.NewShape(sizes...)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}

	// The largest feasible power-of-two block count: capped by the node
	// budget, then shrunk until the array is actually sliceable that many
	// ways (tiny dimensions may not be).
	logB := 0
	for (1<<uint(logB+1))*replicas <= nodes {
		logB++
	}
	var k []int
	for {
		k, _, err = parcube.PlanPartition(sizes, 1<<uint(logB))
		if err == nil {
			break
		}
		if logB == 0 {
			return nil, fmt.Errorf("shard: %w", err)
		}
		logB--
	}
	parts := make([]int, len(k))
	numBlocks := 1
	for j, kj := range k {
		parts[j] = 1 << uint(kj)
		numBlocks *= parts[j]
	}

	p := &Plan{
		Names:    append([]string(nil), names...),
		Sizes:    shape,
		K:        k,
		Parts:    parts,
		Nodes:    nodes,
		Replicas: replicas,
		Epoch:    1,
	}
	grid := make([]int, len(parts))
	for b := 0; b < numBlocks; b++ {
		rem := b
		for j := len(parts) - 1; j >= 0; j-- {
			grid[j] = rem % parts[j]
			rem /= parts[j]
		}
		blk, err := nd.BlockOf(shape, parts, grid)
		if err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
		p.Blocks = append(p.Blocks, blk)
	}
	p.Owners = make([][]int, numBlocks)
	for n := 0; n < nodes; n++ {
		b := n % numBlocks
		p.Owners[b] = append(p.Owners[b], n)
	}
	return p, nil
}

// NumBlocks returns the number of distinct blocks.
func (p *Plan) NumBlocks() int { return len(p.Blocks) }

// Schema rebuilds the parcube schema the plan was computed for — the
// base state of a durable node restarting without its source dataset.
func (p *Plan) Schema() (*parcube.Schema, error) {
	dims := make([]parcube.Dim, len(p.Names))
	for i := range dims {
		dims[i] = parcube.Dim{Name: p.Names[i], Size: p.Sizes[i]}
	}
	return parcube.NewSchema(dims...)
}

// BlockOfNode returns the block a node serves.
func (p *Plan) BlockOfNode(node int) (nd.Block, error) {
	if node < 0 || node >= p.Nodes {
		return nd.Block{}, fmt.Errorf("shard: node %d out of range [0,%d)", node, p.Nodes)
	}
	return p.Blocks[node%len(p.Blocks)], nil
}

// String summarizes the plan for logs.
func (p *Plan) String() string {
	return fmt.Sprintf("shard plan: %d nodes, %d blocks (parts %v), replication >= %d",
		p.Nodes, len(p.Blocks), p.Parts, p.Replicas)
}

// MoveKind classifies one entry of a rebalance migration set.
type MoveKind int

const (
	// MoveAddReplica adds the named nodes as new replicas of the block:
	// checkpoint ship + WAL catch-up, then an atomic read cutover.
	MoveAddReplica MoveKind = iota
	// MoveDrain removes the named nodes from the block's replica set once
	// at least one caught-up replica remains.
	MoveDrain
)

// String names the move kind for logs.
func (k MoveKind) String() string {
	switch k {
	case MoveAddReplica:
		return "add-replica"
	case MoveDrain:
		return "drain"
	}
	return fmt.Sprintf("MoveKind(%d)", int(k))
}

// Move is one block group's migration under a rebalance: only groups
// whose owner set changed appear in the migration set.
type Move struct {
	// Block indexes the (shared) block geometry of both plans.
	Block int
	Kind  MoveKind
	// Nodes are the node ids added to or drained from the block.
	Nodes []int
}

// Rebalance re-runs the ownership assignment over a new node count and
// returns the successor plan plus the minimal migration set taking this
// plan to it. The block geometry is deliberately kept: the Theorem 8
// greedy partition for the old node budget stays communication-feasible
// for any larger one, and keeping it means a node whose block assignment
// did not change moves no data at all. Owners are dealt with the same
// n mod B rule as NewPlan, so every surviving node keeps its block and
// the migration set is exactly the added (grow) or removed (shrink)
// replicas — the minimal set. The successor's epoch is Epoch+1, strictly
// monotone across successive rebalances. Shrinking below one node per
// block is refused: that would force block merges, which the migration
// engine does not perform (drain down to NumBlocks nodes instead).
func (p *Plan) Rebalance(nodes int) (*Plan, []Move, error) {
	if nodes < len(p.Blocks) {
		return nil, nil, fmt.Errorf("shard: rebalance to %d nodes would leave %d blocks unowned; the smallest node set for this geometry is %d",
			nodes, len(p.Blocks)-nodes, len(p.Blocks))
	}
	next := &Plan{
		Names:  append([]string(nil), p.Names...),
		Sizes:  p.Sizes,
		K:      append([]int(nil), p.K...),
		Parts:  append([]int(nil), p.Parts...),
		Blocks: append([]nd.Block(nil), p.Blocks...),
		Nodes:  nodes,
		Epoch:  p.Epoch + 1,
	}
	numBlocks := len(p.Blocks)
	next.Owners = make([][]int, numBlocks)
	for n := 0; n < nodes; n++ {
		b := n % numBlocks
		next.Owners[b] = append(next.Owners[b], n)
	}
	next.Replicas = nodes / numBlocks

	var moves []Move
	for b := range p.Blocks {
		old := make(map[int]bool, len(p.Owners[b]))
		for _, n := range p.Owners[b] {
			old[n] = true
		}
		cur := make(map[int]bool, len(next.Owners[b]))
		var added []int
		for _, n := range next.Owners[b] {
			cur[n] = true
			if !old[n] {
				added = append(added, n)
			}
		}
		var drained []int
		for _, n := range p.Owners[b] {
			if !cur[n] {
				drained = append(drained, n)
			}
		}
		if len(added) > 0 {
			moves = append(moves, Move{Block: b, Kind: MoveAddReplica, Nodes: added})
		}
		if len(drained) > 0 {
			moves = append(moves, Move{Block: b, Kind: MoveDrain, Nodes: drained})
		}
	}
	return next, moves, nil
}

// SplitBlock halves a block along its widest splittable dimension — the
// same cut the greedy partitioner would add next if the block's group
// became the hot spot — returning the two child sub-blocks. The children
// tile the parent exactly, which is what a split cutover requires.
func SplitBlock(b nd.Block) (nd.Block, nd.Block, error) {
	axis, width := -1, 1
	for j := range b.Lo {
		if w := b.Hi[j] - b.Lo[j]; w > width {
			axis, width = j, w
		}
	}
	if axis < 0 {
		return nd.Block{}, nd.Block{}, fmt.Errorf("shard: block %s has no splittable dimension", b)
	}
	mid := b.Lo[axis] + width/2
	lo1 := append([]int(nil), b.Lo...)
	hi1 := append([]int(nil), b.Hi...)
	hi1[axis] = mid
	lo2 := append([]int(nil), b.Lo...)
	hi2 := append([]int(nil), b.Hi...)
	lo2[axis] = mid
	return nd.NewBlock(lo1, hi1), nd.NewBlock(lo2, hi2), nil
}

// ParseBlock parses the nd.Block rendering "[lo:hi,lo:hi,...]" exchanged
// by the SHARDINFO handshake.
func ParseBlock(s string) (nd.Block, error) {
	trimmed := strings.TrimSpace(s)
	if len(trimmed) < 2 || trimmed[0] != '[' || trimmed[len(trimmed)-1] != ']' {
		return nd.Block{}, fmt.Errorf("shard: malformed block %q", s)
	}
	var lo, hi []int
	for _, part := range strings.Split(trimmed[1:len(trimmed)-1], ",") {
		bounds := strings.Split(part, ":")
		if len(bounds) != 2 {
			return nd.Block{}, fmt.Errorf("shard: malformed block range %q", part)
		}
		l, err := strconv.Atoi(strings.TrimSpace(bounds[0]))
		if err != nil {
			return nd.Block{}, fmt.Errorf("shard: malformed block bound %q", bounds[0])
		}
		h, err := strconv.Atoi(strings.TrimSpace(bounds[1]))
		if err != nil {
			return nd.Block{}, fmt.Errorf("shard: malformed block bound %q", bounds[1])
		}
		lo = append(lo, l)
		hi = append(hi, h)
	}
	if len(lo) == 0 {
		return nd.Block{}, fmt.Errorf("shard: empty block %q", s)
	}
	return nd.NewBlock(lo, hi), nil
}
