package shard

import (
	"testing"

	"parcube/internal/nd"
)

func TestNewPlanBasic(t *testing.T) {
	names := []string{"item", "branch", "time", "region"}
	sizes := []int{8, 6, 5, 4}
	p, err := NewPlan(names, sizes, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBlocks() != 4 {
		t.Fatalf("blocks = %d, want 4", p.NumBlocks())
	}

	// Blocks tile the array: in bounds, pairwise disjoint, total volume
	// equal to the array's.
	total := 8 * 6 * 5 * 4
	covered := 0
	for i, b := range p.Blocks {
		if b.Rank() != 4 {
			t.Fatalf("block %s rank %d", b, b.Rank())
		}
		for j := range sizes {
			if b.Lo[j] < 0 || b.Hi[j] > sizes[j] || b.Lo[j] >= b.Hi[j] {
				t.Fatalf("block %s out of bounds", b)
			}
		}
		covered += b.Size()
		for _, o := range p.Blocks[i+1:] {
			if blocksOverlap(b, o) {
				t.Fatalf("blocks %s and %s overlap", b, o)
			}
		}
	}
	if covered != total {
		t.Fatalf("blocks cover %d of %d cells", covered, total)
	}

	// Every block has at least the requested replicas, owners are
	// distinct, and every node serves exactly one block.
	seen := make(map[int]bool)
	for b, owners := range p.Owners {
		if len(owners) < 2 {
			t.Fatalf("block %d has %d owners", b, len(owners))
		}
		for _, n := range owners {
			if seen[n] {
				t.Fatalf("node %d owns two blocks", n)
			}
			seen[n] = true
			blk, err := p.BlockOfNode(n)
			if err != nil {
				t.Fatal(err)
			}
			if blk.String() != p.Blocks[b].String() {
				t.Fatalf("BlockOfNode(%d) = %s, want %s", n, blk, p.Blocks[b])
			}
		}
	}
	if len(seen) != 8 {
		t.Fatalf("%d of 8 nodes assigned", len(seen))
	}
}

// TestNewPlanGreedyCuts checks the planner cuts the largest dimension
// first, like the paper's greedy partitioner it delegates to.
func TestNewPlanGreedyCuts(t *testing.T) {
	p, err := NewPlan([]string{"big", "small"}, []int{64, 4}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.K[0] != 1 || p.K[1] != 0 {
		t.Fatalf("K = %v, want the single cut on the large dimension", p.K)
	}
}

// TestNewPlanTinyDims: when the array cannot be sliced as many ways as
// the node budget allows, the block count shrinks to what is feasible and
// the spare nodes become extra replicas.
func TestNewPlanTinyDims(t *testing.T) {
	p, err := NewPlan([]string{"a"}, []int{2}, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBlocks() != 2 {
		t.Fatalf("blocks = %d, want 2 (size-2 dimension allows one cut)", p.NumBlocks())
	}
	for b, owners := range p.Owners {
		if len(owners) != 8 {
			t.Fatalf("block %d has %d owners, want 8", b, len(owners))
		}
	}
}

func TestNewPlanErrors(t *testing.T) {
	if _, err := NewPlan([]string{"a"}, []int{4}, 4, 0); err == nil {
		t.Fatal("replicas 0 accepted")
	}
	if _, err := NewPlan([]string{"a"}, []int{4}, 1, 2); err == nil {
		t.Fatal("nodes < replicas accepted")
	}
	if _, err := NewPlan([]string{"a", "b"}, []int{4}, 2, 1); err == nil {
		t.Fatal("names/sizes mismatch accepted")
	}
	if _, err := NewPlan([]string{"a"}, []int{0}, 2, 1); err == nil {
		t.Fatal("zero-size dimension accepted")
	}
	p, err := NewPlan([]string{"a"}, []int{4}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.BlockOfNode(2); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestParseBlockRoundTrip(t *testing.T) {
	b := nd.NewBlock([]int{0, 3, 10}, []int{8, 6, 20})
	got, err := ParseBlock(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != b.String() {
		t.Fatalf("round trip %s -> %s", b, got)
	}
	for _, bad := range []string{"", "[]", "0:8", "[0-8]", "[0:8,x:2]", "[0:]"} {
		if _, err := ParseBlock(bad); err == nil {
			t.Fatalf("ParseBlock(%q) accepted", bad)
		}
	}
}
