package shard

import (
	"errors"
	"sync"
	"time"

	"parcube/internal/server"
)

// pool keeps idle protocol clients to one shard address, so scatter
// requests reuse connections instead of dialing per query. Clients that
// saw an error are discarded (their stream may hold a half-read reply);
// healthy ones return to the pool.
type pool struct {
	addr    string
	timeout time.Duration

	mu   sync.Mutex
	idle []*server.Client
}

func newPool(addr string, timeout time.Duration) *pool {
	return &pool{addr: addr, timeout: timeout}
}

// get returns an idle client or dials a new one.
func (p *pool) get() (*server.Client, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	c, err := server.DialTimeout(p.addr, p.timeout)
	if err != nil {
		return nil, err
	}
	c.SetTimeout(p.timeout)
	return c, nil
}

// put returns a healthy client to the pool.
func (p *pool) put(c *server.Client) {
	p.mu.Lock()
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// discard closes a client whose connection can no longer be trusted. The
// close error is irrelevant here — the connection is being thrown away.
func (p *pool) discard(c *server.Client) {
	_ = c.Close()
}

// close drains and closes all idle clients, reporting their close errors
// joined: on a TCP path the Close error can be the only sign buffered
// bytes never reached the peer.
func (p *pool) close() error {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	var errs []error
	for _, c := range idle {
		if err := c.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
