package shard

import (
	"testing"
)

// TestRebalanceMinimalMoves asserts the planner's central elasticity
// property: re-running the Theorem 8 assignment over a new node count
// keeps the block geometry and moves only the replicas the node diff
// forces — the minimal migration set.
func TestRebalanceMinimalMoves(t *testing.T) {
	plan, err := NewPlan([]string{"a", "b", "c", "d"}, []int{8, 6, 5, 4}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	numBlocks := len(plan.Blocks)

	// Grow 4 -> 8: every block gains exactly one replica, nothing drains,
	// and no surviving node changes blocks.
	next, moves, err := plan.Rebalance(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(next.Blocks) != numBlocks {
		t.Fatalf("rebalance changed the block count: %d -> %d", numBlocks, len(next.Blocks))
	}
	for b := range plan.Blocks {
		if plan.Blocks[b].String() != next.Blocks[b].String() {
			t.Fatalf("block %d geometry moved: %s -> %s", b, plan.Blocks[b], next.Blocks[b])
		}
	}
	if len(moves) != numBlocks {
		t.Fatalf("grow 4->8 emitted %d moves, want %d (one add per block)", len(moves), numBlocks)
	}
	added := 0
	for _, mv := range moves {
		if mv.Kind != MoveAddReplica {
			t.Fatalf("grow 4->8 emitted a %v move for block %d", mv.Kind, mv.Block)
		}
		added += len(mv.Nodes)
	}
	if added != 4 {
		t.Fatalf("grow 4->8 moved %d replicas, want exactly the 4 new nodes", added)
	}
	// Every original owner survives in place.
	for b := range plan.Owners {
		owned := make(map[int]bool)
		for _, n := range next.Owners[b] {
			owned[n] = true
		}
		for _, n := range plan.Owners[b] {
			if !owned[n] {
				t.Fatalf("grow 4->8 moved surviving node %d off block %d", n, b)
			}
		}
	}

	// Shrink 8 -> 6: exactly two drains, no adds.
	shrunk, moves, err := next.Rebalance(6)
	if err != nil {
		t.Fatal(err)
	}
	drained := 0
	for _, mv := range moves {
		if mv.Kind != MoveDrain {
			t.Fatalf("shrink 8->6 emitted a %v move for block %d", mv.Kind, mv.Block)
		}
		drained += len(mv.Nodes)
	}
	if drained != 2 {
		t.Fatalf("shrink 8->6 drained %d replicas, want 2", drained)
	}
	if shrunk.Nodes != 6 {
		t.Fatalf("shrunk plan has %d nodes, want 6", shrunk.Nodes)
	}

	// A same-size rebalance is a no-op migration set.
	if _, moves, err := shrunk.Rebalance(6); err != nil || len(moves) != 0 {
		t.Fatalf("identity rebalance = (%d moves, %v), want (0, nil)", len(moves), err)
	}

	// Shrinking below one node per block would force block merges.
	if _, _, err := plan.Rebalance(numBlocks - 1); err == nil {
		t.Fatalf("rebalance to %d nodes with %d blocks accepted", numBlocks-1, numBlocks)
	}
}

// TestRebalanceEpochMonotone asserts plan epochs are strictly monotone
// across successive rebalances, whatever direction the node count moves.
func TestRebalanceEpochMonotone(t *testing.T) {
	plan, err := NewPlan([]string{"a", "b"}, []int{16, 16}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Epoch != 1 {
		t.Fatalf("fresh plan epoch = %d, want 1", plan.Epoch)
	}
	last := plan.Epoch
	for _, nodes := range []int{8, 12, 8, 4, 16, 4} {
		next, _, err := plan.Rebalance(nodes)
		if err != nil {
			t.Fatalf("rebalance to %d: %v", nodes, err)
		}
		if next.Epoch <= last {
			t.Fatalf("epoch not strictly monotone: %d -> %d (rebalance to %d)", last, next.Epoch, nodes)
		}
		last = next.Epoch
		plan = next
	}
}

// TestSplitBlockGeometry asserts SplitBlock halves the widest dimension
// and that the children tile the parent exactly.
func TestSplitBlockGeometry(t *testing.T) {
	plan, err := NewPlan([]string{"a", "b", "c"}, []int{16, 4, 9}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for b, parent := range plan.Blocks {
		c1, c2, err := SplitBlock(parent)
		if err != nil {
			t.Fatalf("block %d (%s): %v", b, parent, err)
		}
		if c1.Size()+c2.Size() != parent.Size() {
			t.Fatalf("children of %s cover %d cells, parent has %d", parent, c1.Size()+c2.Size(), parent.Size())
		}
		if blocksOverlap(c1, c2) {
			t.Fatalf("children %s and %s of %s overlap", c1, c2, parent)
		}
		// The cut lands on the widest dimension.
		axis := -1
		for j := range parent.Lo {
			if c1.Hi[j] != c2.Hi[j] {
				axis = j
			}
		}
		if axis < 0 {
			t.Fatalf("split of %s cut no dimension", parent)
		}
		w := parent.Hi[axis] - parent.Lo[axis]
		for j := range parent.Lo {
			if pw := parent.Hi[j] - parent.Lo[j]; pw > w {
				t.Fatalf("split of %s cut dimension %d (width %d), but %d is wider (%d)", parent, axis, w, j, pw)
			}
		}
	}

	// A fully degenerate block cannot split.
	one, err := NewPlan([]string{"a"}, []int{1}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SplitBlock(one.Blocks[0]); err == nil {
		t.Fatal("split of a 1-cell block succeeded")
	}
}
