package shard

import (
	"testing"

	"parcube"
	"parcube/internal/server"
)

// These tests pin reconcileTail's geometric comparison windows (step 4,
// then *8) at their boundaries. The repair walks j from the replica's
// newest LSN down to lo+1 — lo itself is never scanned inside a window —
// so agreement sitting exactly at a window edge, or a divergent suffix
// longer than the first window, must force the next (wider) window
// rather than a wrong truncation point.

// windowPair boots a lockstep pair, records `agreed` coordinator deltas
// (LSNs 1..agreed, mirrored into ref), then forges `divergent` records
// directly onto replica 0 (lost-ack style: applied and logged, never
// acked), marks it down, and replays `divergent` different retried
// deltas through the coordinator so the live peer reuses the same LSNs.
func windowPair(t *testing.T, agreed, divergent int) (dc *durableCluster, ref *parcube.Cube, g *blockGroup, rep *replica) {
	t.Helper()
	ds, refCube := test4D(t)
	dc = startLockstepPair(t, ds)
	ref = refCube
	g = dc.coord.groups()[0]
	rep = g.replicaList()[0] // nodes[0]: replicas follow Addrs order

	for i := 0; i < agreed; i++ {
		rows := []server.Row{{Coords: blockCell(dc.nodes[0], i), Value: float64(i + 1)}}
		if _, _, err := dc.coord.Delta(rows, 0); err != nil {
			t.Fatalf("agreed delta %d: %v", i, err)
		}
		applyRef(t, ref, rows)
	}

	direct, err := server.Dial(dc.nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < divergent; i++ {
		lsn := uint64(agreed + i + 1)
		rows := []server.Row{{Coords: blockCell(dc.nodes[0], 20+i), Value: float64(1000 + i)}}
		if applied, err := direct.DeltaAt(lsn, rows); err != nil || !applied {
			t.Fatalf("direct delta at %d: applied=%v, %v", lsn, applied, err)
		}
	}
	if err := direct.Close(); err != nil {
		t.Fatal(err)
	}
	dc.coord.markDown(rep)

	for i := 0; i < divergent; i++ {
		rows := []server.Row{{Coords: blockCell(dc.nodes[0], 40+i), Value: float64(2000 + i)}}
		if _, _, err := dc.coord.Delta(rows, 0); err != nil {
			t.Fatalf("retried delta %d: %v", i, err)
		}
		applyRef(t, ref, rows)
	}

	want := uint64(agreed + divergent)
	if a, b := dc.nodes[0].LastLSN(), dc.nodes[1].LastLSN(); a != want || b != want {
		t.Fatalf("setup: replicas at LSNs %d and %d, want both at %d (divergent content)", a, b, want)
	}
	return dc, ref, g, rep
}

// repairAndAssert runs the synchronous rejoin and checks the repaired
// replica rejoined in lockstep with the repaired content.
func repairAndAssert(t *testing.T, dc *durableCluster, ref *parcube.Cube, g *blockGroup, rep *replica, wantLSN uint64, when string) {
	t.Helper()
	dc.coord.tryRejoin(g, rep)
	if rep.down.Load() {
		t.Fatalf("%s: replica not readmitted (stats %+v)", when, dc.coord.Stats())
	}
	if got := dc.coord.Stats().TailTruncates; got == 0 {
		t.Fatalf("%s: divergent tail readmitted without truncation", when)
	}
	if a, b := dc.nodes[0].LastLSN(), dc.nodes[1].LastLSN(); a != b || a != wantLSN {
		t.Fatalf("%s: replicas at LSNs %d and %d after repair, want lockstep at %d", when, a, b, wantLSN)
	}
	assertCoordMatches(t, dc.coord, ref, when)
}

// TestRejoinWindowEdgeAgreement puts the highest agreed record exactly
// at the first window's lower edge: repLSN=9, step=4, lo=5 — records
// 6..9 all diverge and LSN 5 (the agreement) is lo itself, which the
// window never scans. The repair must widen to the next window and
// truncate to 5, not give up or truncate to 0.
func TestRejoinWindowEdgeAgreement(t *testing.T) {
	dc, ref, g, rep := windowPair(t, 5, 4)
	repairAndAssert(t, dc, ref, g, rep, 9, "edge-agreement repair")
}

// TestRejoinWindowLongSuffix makes the divergent suffix longer than the
// whole first window: repLSN=9 with records 4..9 divergent, so window
// one (lo=5) sees only divergence and the agreement at LSN 3 is two
// records below its edge. The widened window must find it.
func TestRejoinWindowLongSuffix(t *testing.T) {
	dc, ref, g, rep := windowPair(t, 3, 6)
	repairAndAssert(t, dc, ref, g, rep, 9, "long-suffix repair")
}

// TestRejoinWindowFullRebuild has no agreed history at all: every
// record the replica holds disagrees with the group (repLSN=3 < step=4,
// so lo=0 in the first window). The repair must truncate to 0 and
// rebuild the replica entirely from the peer.
func TestRejoinWindowFullRebuild(t *testing.T) {
	dc, ref, g, rep := windowPair(t, 0, 3)
	repairAndAssert(t, dc, ref, g, rep, 3, "full-rebuild repair")
}
