package shard

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"parcube"
	"parcube/internal/server"
)

// test4D builds the reference dataset: a 4-D fact table with integer
// measures (so aggregate sums are exact in float64) and uneven dimension
// sizes to exercise remainder blocks.
func test4D(t *testing.T) (*parcube.Dataset, *parcube.Cube) {
	t.Helper()
	schema, err := parcube.NewSchema(
		parcube.Dim{Name: "item", Size: 8},
		parcube.Dim{Name: "branch", Size: 6},
		parcube.Dim{Name: "time", Size: 5},
		parcube.Dim{Name: "region", Size: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	ds := parcube.NewDataset(schema)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 600; i++ {
		err := ds.Add(float64(rng.Intn(50)+1),
			rng.Intn(8), rng.Intn(6), rng.Intn(5), rng.Intn(4))
		if err != nil {
			t.Fatal(err)
		}
	}
	cube, _, err := parcube.Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	return ds, cube
}

// cluster is a loopback shard cluster plus its coordinator server.
type cluster struct {
	plan  *Plan
	nodes []*Node
	coord *Coordinator
	srv   *server.Server
	addr  string
}

// startCluster boots `nodes` shard servers and a coordinator serving the
// line protocol on loopback TCP.
func startCluster(t *testing.T, ds *parcube.Dataset, nodes, replicas int) *cluster {
	t.Helper()
	names := ds.Schema().Names()
	sizes := ds.Schema().Sizes()
	plan, err := NewPlan(names, sizes, nodes, replicas)
	if err != nil {
		t.Fatal(err)
	}
	cl := &cluster{plan: plan}
	for i := 0; i < nodes; i++ {
		n, err := StartNode(plan, i, ds, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cl.nodes = append(cl.nodes, n)
		t.Cleanup(func() { n.Close() })
	}
	addrs := make([]string, len(cl.nodes))
	for i, n := range cl.nodes {
		addrs[i] = n.Addr()
	}
	cl.coord, err = NewCoordinator(Config{
		Addrs:   addrs,
		Timeout: 2 * time.Second,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.coord.Close() })
	cl.srv = server.NewBackend(cl.coord)
	cl.srv.ReadTimeout = 10 * time.Second
	cl.srv.WriteTimeout = 10 * time.Second
	cl.addr, err = cl.srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.srv.Close() })
	return cl
}

// dimSubsets enumerates every subset of the schema's dimension names.
func dimSubsets(names []string) [][]string {
	var out [][]string
	for mask := 0; mask < 1<<len(names); mask++ {
		var dims []string
		for i, n := range names {
			if mask&(1<<i) != 0 {
				dims = append(dims, n)
			}
		}
		out = append(out, dims)
	}
	return out
}

// assertClusterMatchesCube drives every query shape through a protocol
// client against the coordinator and checks cell-exact equality with the
// unsharded reference cube.
func assertClusterMatchesCube(t *testing.T, addr string, cube *parcube.Cube) {
	t.Helper()
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	total, err := c.Total()
	if err != nil {
		t.Fatal(err)
	}
	if total != cube.Total() {
		t.Fatalf("TOTAL = %v, want %v", total, cube.Total())
	}

	for _, dims := range dimSubsets(cube.Schema().Names()) {
		rows, err := c.GroupBy(dims...)
		if err != nil {
			t.Fatalf("GROUPBY %v: %v", dims, err)
		}
		want, err := cube.GroupBy(dims...)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != want.Size() {
			t.Fatalf("GROUPBY %v: %d rows, want %d", dims, len(rows), want.Size())
		}
		for _, row := range rows {
			if row.Value != want.At(row.Coords...) {
				t.Fatalf("GROUPBY %v cell %v = %v, want %v",
					dims, row.Coords, row.Value, want.At(row.Coords...))
			}
		}
	}

	// VALUE single-cell lookups across the block seams.
	ib, err := cube.GroupBy("item", "branch")
	if err != nil {
		t.Fatal(err)
	}
	for _, coords := range [][]int{{0, 0}, {3, 2}, {4, 3}, {7, 5}} {
		v, err := c.Value([]string{"item", "branch"}, coords)
		if err != nil {
			t.Fatalf("VALUE %v: %v", coords, err)
		}
		if v != ib.At(coords...) {
			t.Fatalf("VALUE %v = %v, want %v", coords, v, ib.At(coords...))
		}
	}

	// TOP matches the reference ranking row for row.
	top, err := c.Top(5, "item", "time")
	if err != nil {
		t.Fatal(err)
	}
	it, err := cube.GroupBy("item", "time")
	if err != nil {
		t.Fatal(err)
	}
	wantTop := it.Top(5)
	if len(top) != len(wantTop) {
		t.Fatalf("TOP returned %d rows, want %d", len(top), len(wantTop))
	}
	for i := range top {
		if top[i].Value != wantTop[i].Value {
			t.Fatalf("TOP row %d = %+v, want %+v", i, top[i], wantTop[i])
		}
	}

	// QUERY statements with filters shard cell-exactly too.
	stmt := "GROUP BY item, region WHERE time BETWEEN 1 AND 3"
	rows, err := c.Query(stmt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cube.Query(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != want.Size() {
		t.Fatalf("QUERY: %d rows, want %d", len(rows), want.Size())
	}
	for _, row := range rows {
		if row.Value != want.At(row.Coords...) {
			t.Fatalf("QUERY cell %v = %v, want %v", row.Coords, row.Value, want.At(row.Coords...))
		}
	}
}

// TestShardedClusterMatchesSingleNode is the end-to-end acceptance test:
// a coordinator over 8 shard nodes (4 blocks, 2 replicas each) answers
// every query shape exactly like the unsharded cube — including after a
// shard node is killed and its block fails over to the replica.
func TestShardedClusterMatchesSingleNode(t *testing.T) {
	ds, cube := test4D(t)
	cl := startCluster(t, ds, 8, 2)
	if cl.plan.NumBlocks() != 4 {
		t.Fatalf("plan has %d blocks, want 4", cl.plan.NumBlocks())
	}
	assertClusterMatchesCube(t, cl.addr, cube)

	// Kill one shard node; its block's replica must take over.
	if err := cl.nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
	assertClusterMatchesCube(t, cl.addr, cube)
	if s := cl.coord.Stats(); s.Failovers == 0 || s.Errors == 0 {
		t.Fatalf("no failovers recorded after killing a node: %+v", s)
	}
}

// TestCoordinatorStatsOverProtocol checks the coordinator's counters ride
// the STATS extension of the wire protocol.
func TestCoordinatorStatsOverProtocol(t *testing.T) {
	ds, _ := test4D(t)
	cl := startCluster(t, ds, 4, 2)
	c, err := server.Dial(cl.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Total(); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["blocks"] != "2" || stats["shards"] != "4" {
		t.Fatalf("topology fields wrong: %v", stats)
	}
	if stats["fanouts"] != "2" {
		t.Fatalf("fanouts = %q after one TOTAL over 2 blocks (stats %v)", stats["fanouts"], stats)
	}
	if stats["queries"] != "1" {
		t.Fatalf("queries = %q, want 1 (stats %v)", stats["queries"], stats)
	}
}

// TestReplicaOneFailureSurfacesError: with R=1 there is nowhere to fail
// over, so killing a node must produce a descriptive partial-result
// error naming the lost block, not a wrong answer.
func TestReplicaOneFailureSurfacesError(t *testing.T) {
	ds, cube := test4D(t)
	cl := startCluster(t, ds, 4, 1)
	if cl.plan.NumBlocks() != 4 {
		t.Fatalf("plan has %d blocks, want 4", cl.plan.NumBlocks())
	}
	assertClusterMatchesCube(t, cl.addr, cube)

	killed := cl.nodes[1]
	if err := killed.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := cl.coord.GroupBy("item")
	if err == nil {
		t.Fatal("query over a lost R=1 block succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, killed.Block.String()) {
		t.Fatalf("error %q does not name the lost block %s", msg, killed.Block)
	}
	if !strings.Contains(msg, killed.Addr()) {
		t.Fatalf("error %q does not name the lost replica %s", msg, killed.Addr())
	}

	// The grand total still names the block through the wire protocol.
	c, err := server.Dial(cl.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Total(); err == nil || !strings.Contains(err.Error(), "block") {
		t.Fatalf("TOTAL over lost block: %v", err)
	}
}

// TestValuePrunesFanout: a fully-specified VALUE lookup must touch only
// the single block that owns the cell.
func TestValuePrunesFanout(t *testing.T) {
	ds, cube := test4D(t)
	cl := startCluster(t, ds, 8, 2)
	before := cl.coord.Stats().Fanouts
	dims := []string{"item", "branch", "time", "region"}
	want, err := cube.GroupBy(dims...)
	if err != nil {
		t.Fatal(err)
	}
	v, err := cl.coord.Value(dims, []int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v != want.At(1, 1, 1, 1) {
		t.Fatalf("VALUE = %v, want %v", v, want.At(1, 1, 1, 1))
	}
	if got := cl.coord.Stats().Fanouts - before; got != 1 {
		t.Fatalf("fully-specified VALUE fanned out to %d blocks, want 1", got)
	}
}
