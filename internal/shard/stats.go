package shard

import "sync/atomic"

// Stats is a snapshot of coordinator scatter-gather activity, in the
// style of internal/comm.Stats.
type Stats struct {
	// Fanouts is the number of per-block sub-requests issued (one per
	// owning block per query).
	Fanouts int64
	// Retries counts attempts made after a failure, including the backoff
	// wait that precedes them.
	Retries int64
	// Failovers counts sub-requests ultimately answered by a replica other
	// than the first choice.
	Failovers int64
	// Errors counts individual sub-request failures (timeouts, transport
	// errors, ERR replies) observed before any successful answer.
	Errors int64
}

// counters accumulates coordinator activity with atomics so concurrent
// fan-outs can record freely.
type counters struct {
	fanouts   atomic.Int64
	retries   atomic.Int64
	failovers atomic.Int64
	errors    atomic.Int64
}

// snapshot returns the current totals.
func (c *counters) snapshot() Stats {
	return Stats{
		Fanouts:   c.fanouts.Load(),
		Retries:   c.retries.Load(),
		Failovers: c.failovers.Load(),
		Errors:    c.errors.Load(),
	}
}
