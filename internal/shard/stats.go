package shard

import "parcube/internal/obs"

// Stats is a snapshot of coordinator scatter-gather activity, in the
// style of internal/comm.Stats, plus the latency distributions of the
// fan-out path.
type Stats struct {
	// Fanouts is the number of per-block sub-requests issued (one per
	// owning block per query).
	Fanouts int64
	// Retries counts attempts made after a failure, including the backoff
	// wait that precedes them.
	Retries int64
	// Failovers counts sub-requests ultimately answered by a replica other
	// than the first choice.
	Failovers int64
	// Errors counts individual sub-request failures (timeouts, transport
	// errors, ERR replies) observed before any successful answer.
	Errors int64
	// AskLatency summarizes the nanoseconds each per-block sub-request
	// took end to end, including every retry, backoff, and failover
	// attempt — the tail here is what a slow or flapping replica costs.
	AskLatency obs.HistogramSnapshot
	// MergeLatency summarizes the nanoseconds spent element-wise merging
	// the gathered per-shard tables after the scatter completes.
	MergeLatency obs.HistogramSnapshot
	// Deltas counts acknowledged ingest requests; DeltaCells the cells
	// they carried across all blocks.
	Deltas     int64
	DeltaCells int64
	// ReplicaDowns counts replicas evicted from the serving set after a
	// transport failure on the write path; Rejoins counts re-admissions
	// by the background rejoin loop; CatchupRecords the log records
	// streamed from live peers to catch rejoining replicas up.
	ReplicaDowns   int64
	Rejoins        int64
	CatchupRecords int64
	// TailTruncates counts rejoin repairs that discarded a recovering
	// replica's unacknowledged (or divergent) log tail before catch-up.
	TailTruncates int64
	// HedgesFired counts hedged reads that launched a second attempt
	// after the hedge delay; HedgeWins counts those where the second
	// attempt answered first. Wins without fires would mean the delay
	// is far too aggressive; fires without wins, too conservative.
	HedgesFired int64
	HedgeWins   int64
	// AttemptLatency summarizes single-attempt latencies (one replica,
	// no retries) — the distribution the hedge delay is derived from.
	AttemptLatency obs.HistogramSnapshot
}

// counters is the coordinator's per-instance metrics registry with the
// hot-path series pre-resolved, so recording is one atomic op.
type counters struct {
	reg            *obs.Registry
	fanouts        *obs.Counter
	retries        *obs.Counter
	failovers      *obs.Counter
	errors         *obs.Counter
	askNs          *obs.Histogram
	mergeNs        *obs.Histogram
	deltas         *obs.Counter
	deltaCells     *obs.Counter
	replicaDowns   *obs.Counter
	rejoins        *obs.Counter
	catchupRecords *obs.Counter
	tailTruncates  *obs.Counter
	hedgesFired    *obs.Counter
	hedgeWins      *obs.Counter
	attemptNs      *obs.Histogram
	ingestBatch    *obs.Histogram
}

// newCounters builds the registry and resolves the series.
func newCounters() *counters {
	reg := obs.NewRegistry()
	return &counters{
		reg:            reg,
		fanouts:        reg.Counter("fanouts"),
		retries:        reg.Counter("retries"),
		failovers:      reg.Counter("failovers"),
		errors:         reg.Counter("shard_errors"),
		askNs:          reg.Histogram("ask_ns"),
		mergeNs:        reg.Histogram("merge_ns"),
		deltas:         reg.Counter("deltas"),
		deltaCells:     reg.Counter("delta_cells"),
		replicaDowns:   reg.Counter("replica_downs"),
		rejoins:        reg.Counter("rejoins"),
		catchupRecords: reg.Counter("catchup_records"),
		tailTruncates:  reg.Counter("tail_truncates"),
		hedgesFired:    reg.Counter("hedges_fired"),
		hedgeWins:      reg.Counter("hedge_wins"),
		attemptNs:      reg.Histogram("attempt_ns"),
		ingestBatch:    reg.Histogram("ingest_batch_size"),
	}
}

// snapshot returns the current totals.
func (c *counters) snapshot() Stats {
	return Stats{
		Fanouts:        c.fanouts.Value(),
		Retries:        c.retries.Value(),
		Failovers:      c.failovers.Value(),
		Errors:         c.errors.Value(),
		AskLatency:     c.askNs.Snapshot(),
		MergeLatency:   c.mergeNs.Snapshot(),
		Deltas:         c.deltas.Value(),
		DeltaCells:     c.deltaCells.Value(),
		ReplicaDowns:   c.replicaDowns.Value(),
		Rejoins:        c.rejoins.Value(),
		CatchupRecords: c.catchupRecords.Value(),
		TailTruncates:  c.tailTruncates.Value(),
		HedgesFired:    c.hedgesFired.Value(),
		HedgeWins:      c.hedgeWins.Value(),
		AttemptLatency: c.attemptNs.Snapshot(),
	}
}
