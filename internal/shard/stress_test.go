package shard

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestStressReplicaChurn hammers a replicated cluster with concurrent
// scatter-gather queries while one replica of block 0 is repeatedly
// killed and restored on its original address. With a second replica of
// the block always up, every query must still succeed — and because the
// coordinator's failover is all-or-nothing per block, every answer must
// stay cell-exact against the single-node reference cube: a replica
// dying mid-scatter may cost a retry, never a lost or double-merged
// cell. Run under -race this also shakes out coordinator/pool data
// races during churn.
func TestStressReplicaChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("replica churn stress test")
	}
	ds, ref := test4D(t)
	names, sizes := ds.Schema().Names(), ds.Schema().Sizes()
	plan, err := NewPlan(names, sizes, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes 0 and 2 serve block 0; nodes 1 and 3 serve block 1
	// (BlockOfNode is node % blocks). Node 0 is the churn victim, so
	// node 2 keeps block 0 answerable throughout.
	nodes := make([]*Node, 4)
	for i := range nodes {
		n, err := StartNode(plan, i, ds, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	for _, n := range nodes[1:] {
		t.Cleanup(func() { _ = n.Close() })
	}
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.Addr()
	}
	coord, err := NewCoordinator(Config{
		Addrs:   addrs,
		Timeout: time.Second,
		Backoff: time.Millisecond,
		Rounds:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = coord.Close() })

	wantTotal := ref.Total()
	wantTbl, err := ref.GroupBy("item", "region")
	if err != nil {
		t.Fatal(err)
	}

	// Chaos loop: kill node 0, restore it on the same address (Go
	// listeners set SO_REUSEADDR, so the rebind succeeds as soon as the
	// old socket is torn down), repeat until the query workers finish.
	stop := make(chan struct{})
	var chaos sync.WaitGroup
	var victimMu sync.Mutex
	victim := nodes[0]
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		addr := nodes[0].Addr()
		for cycle := 0; ; cycle++ {
			select {
			case <-stop:
				return
			default:
			}
			victimMu.Lock()
			v := victim
			victimMu.Unlock()
			if err := v.Close(); err != nil {
				t.Errorf("churn cycle %d: close: %v", cycle, err)
				return
			}
			time.Sleep(2 * time.Millisecond)
			restored, err := StartNode(plan, 0, ds, addr)
			for attempt := 0; err != nil && attempt < 200; attempt++ {
				select {
				case <-stop:
					return
				default:
				}
				time.Sleep(5 * time.Millisecond)
				restored, err = StartNode(plan, 0, ds, addr)
			}
			if err != nil {
				t.Errorf("churn cycle %d: restore on %s: %v", cycle, addr, err)
				return
			}
			victimMu.Lock()
			victim = restored
			victimMu.Unlock()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// The parallel subtests all run inside this group; t.Run does not
	// return until they finish, which bounds the chaos loop's lifetime.
	t.Run("queries", func(t *testing.T) {
		for w := 0; w < 4; w++ {
			t.Run(fmt.Sprintf("worker%d", w), func(t *testing.T) {
				t.Parallel()
				deadline := time.Now().Add(2 * time.Second)
				for rounds := 0; time.Now().Before(deadline); rounds++ {
					total, err := coord.Total()
					if err != nil {
						t.Fatalf("round %d: TOTAL failed despite a live replica per block: %v", rounds, err)
					}
					if total != wantTotal {
						t.Fatalf("round %d: TOTAL = %v, want %v (lost or double-merged cells)", rounds, total, wantTotal)
					}
					tbl, err := coord.GroupBy("item", "region")
					if err != nil {
						t.Fatalf("round %d: GROUPBY failed despite a live replica per block: %v", rounds, err)
					}
					for i := 0; i < 8; i++ {
						for j := 0; j < 4; j++ {
							if got, want := tbl.At(i, j), wantTbl.At(i, j); got != want {
								t.Fatalf("round %d: cell (%d,%d) = %v, want %v (lost or double-merged cells)",
									rounds, i, j, got, want)
							}
						}
					}
					v, err := coord.Value([]string{"item", "region"}, []int{3, 2})
					if err != nil {
						t.Fatalf("round %d: VALUE failed despite a live replica per block: %v", rounds, err)
					}
					if want := wantTbl.At(3, 2); v != want {
						t.Fatalf("round %d: VALUE = %v, want %v", rounds, v, want)
					}
				}
			})
		}
	})

	close(stop)
	chaos.Wait()
	victimMu.Lock()
	last := victim
	victimMu.Unlock()
	_ = last.Close()

	if s := coord.Stats(); s.Failovers == 0 && s.Retries == 0 && s.Errors == 0 {
		t.Logf("note: churn produced no failovers (%+v); timing was too kind this run", s)
	} else {
		t.Logf("churn stats: %+v", coord.Stats())
	}
}
