package shard

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"parcube/internal/server"
)

// TestStressReplicaChurn hammers a replicated cluster with concurrent
// scatter-gather queries while one replica of block 0 is repeatedly
// killed and restored on its original address. With a second replica of
// the block always up, every query must still succeed — and because the
// coordinator's failover is all-or-nothing per block, every answer must
// stay cell-exact against the single-node reference cube: a replica
// dying mid-scatter may cost a retry, never a lost or double-merged
// cell. Run under -race this also shakes out coordinator/pool data
// races during churn.
func TestStressReplicaChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("replica churn stress test")
	}
	ds, ref := test4D(t)
	names, sizes := ds.Schema().Names(), ds.Schema().Sizes()
	plan, err := NewPlan(names, sizes, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes 0 and 2 serve block 0; nodes 1 and 3 serve block 1
	// (BlockOfNode is node % blocks). Node 0 is the churn victim, so
	// node 2 keeps block 0 answerable throughout.
	nodes := make([]*Node, 4)
	for i := range nodes {
		n, err := StartNode(plan, i, ds, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	for _, n := range nodes[1:] {
		t.Cleanup(func() { _ = n.Close() })
	}
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.Addr()
	}
	coord, err := NewCoordinator(Config{
		Addrs:   addrs,
		Timeout: time.Second,
		Backoff: time.Millisecond,
		Rounds:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = coord.Close() })

	wantTotal := ref.Total()
	wantTbl, err := ref.GroupBy("item", "region")
	if err != nil {
		t.Fatal(err)
	}

	// Chaos loop: kill node 0, restore it on the same address (Go
	// listeners set SO_REUSEADDR, so the rebind succeeds as soon as the
	// old socket is torn down), repeat until the query workers finish.
	stop := make(chan struct{})
	var chaos sync.WaitGroup
	var victimMu sync.Mutex
	victim := nodes[0]
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		addr := nodes[0].Addr()
		for cycle := 0; ; cycle++ {
			select {
			case <-stop:
				return
			default:
			}
			victimMu.Lock()
			v := victim
			victimMu.Unlock()
			if err := v.Close(); err != nil {
				t.Errorf("churn cycle %d: close: %v", cycle, err)
				return
			}
			time.Sleep(2 * time.Millisecond)
			restored, err := StartNode(plan, 0, ds, addr)
			for attempt := 0; err != nil && attempt < 200; attempt++ {
				select {
				case <-stop:
					return
				default:
				}
				time.Sleep(5 * time.Millisecond)
				restored, err = StartNode(plan, 0, ds, addr)
			}
			if err != nil {
				t.Errorf("churn cycle %d: restore on %s: %v", cycle, addr, err)
				return
			}
			victimMu.Lock()
			victim = restored
			victimMu.Unlock()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// The parallel subtests all run inside this group; t.Run does not
	// return until they finish, which bounds the chaos loop's lifetime.
	t.Run("queries", func(t *testing.T) {
		for w := 0; w < 4; w++ {
			t.Run(fmt.Sprintf("worker%d", w), func(t *testing.T) {
				t.Parallel()
				deadline := time.Now().Add(2 * time.Second)
				for rounds := 0; time.Now().Before(deadline); rounds++ {
					total, err := coord.Total()
					if err != nil {
						t.Fatalf("round %d: TOTAL failed despite a live replica per block: %v", rounds, err)
					}
					if total != wantTotal {
						t.Fatalf("round %d: TOTAL = %v, want %v (lost or double-merged cells)", rounds, total, wantTotal)
					}
					tbl, err := coord.GroupBy("item", "region")
					if err != nil {
						t.Fatalf("round %d: GROUPBY failed despite a live replica per block: %v", rounds, err)
					}
					for i := 0; i < 8; i++ {
						for j := 0; j < 4; j++ {
							if got, want := tbl.At(i, j), wantTbl.At(i, j); got != want {
								t.Fatalf("round %d: cell (%d,%d) = %v, want %v (lost or double-merged cells)",
									rounds, i, j, got, want)
							}
						}
					}
					v, err := coord.Value([]string{"item", "region"}, []int{3, 2})
					if err != nil {
						t.Fatalf("round %d: VALUE failed despite a live replica per block: %v", rounds, err)
					}
					if want := wantTbl.At(3, 2); v != want {
						t.Fatalf("round %d: VALUE = %v, want %v", rounds, v, want)
					}
				}
			})
		}
	})

	close(stop)
	chaos.Wait()
	victimMu.Lock()
	last := victim
	victimMu.Unlock()
	_ = last.Close()

	if s := coord.Stats(); s.Failovers == 0 && s.Retries == 0 && s.Errors == 0 {
		t.Logf("note: churn produced no failovers (%+v); timing was too kind this run", s)
	} else {
		t.Logf("churn stats: %+v", coord.Stats())
	}
}

// TestStressDurableChurnWithIngest is the durable twin of
// TestStressReplicaChurn: one replica of block 0 is repeatedly killed
// with Crash (no flush — the kill -9 path) and restarted from its data
// directory, while writers stream deltas through the coordinator and
// readers scatter-gather concurrently. Acknowledged writes must never
// fail (the sibling replica stays up) and, once the churn stops and the
// victim has rejoined, the cluster — and then the victim alone — must
// hold exactly the base cube plus every acknowledged delta: crash
// recovery plus rejoin catch-up may lose nothing that was acked. Run
// under -race this also exercises the ingest/rejoin locking.
func TestStressDurableChurnWithIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("durable churn stress test")
	}
	ds, ref := test4D(t)
	dc := startDurableCluster(t, ds, 4, 2)
	// Capture the victim and its immutable block geometry before the
	// chaos loop starts replacing dc.nodes[0].
	n0, n1 := dc.nodes[0], dc.nodes[1]
	addr0 := n0.Addr()

	var ackedMu sync.Mutex
	var acked [][]server.Row

	stop := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		victim := n0
		defer func() { dc.nodes[0] = victim }() // hand the live node back for cleanup
		dopts := dc.dopts
		dopts.DataDir = dc.dirs[0]
		for cycle := 0; ; cycle++ {
			select {
			case <-stop:
				return
			default:
			}
			victim.Crash()
			time.Sleep(2 * time.Millisecond)
			restored, err := StartDurableNode(dc.plan, 0, nil, addr0, dopts)
			for attempt := 0; err != nil && attempt < 400; attempt++ {
				time.Sleep(5 * time.Millisecond)
				restored, err = StartDurableNode(dc.plan, 0, nil, addr0, dopts)
			}
			if err != nil {
				t.Errorf("churn cycle %d: restore on %s: %v", cycle, addr0, err)
				return
			}
			victim = restored
			time.Sleep(10 * time.Millisecond)
		}
	}()

	t.Run("traffic", func(t *testing.T) {
		t.Run("writer", func(t *testing.T) {
			t.Parallel()
			deadline := time.Now().Add(2 * time.Second)
			for seq := 0; time.Now().Before(deadline); seq++ {
				node := n0
				if seq%2 == 1 {
					node = n1
				}
				rows := []server.Row{{Coords: blockCell(node, seq), Value: float64(seq%7 + 1)}}
				if _, _, err := dc.coord.Delta(rows, 0); err != nil {
					t.Fatalf("delta %d failed despite a live replica per block: %v", seq, err)
				}
				ackedMu.Lock()
				acked = append(acked, rows)
				ackedMu.Unlock()
			}
		})
		for w := 0; w < 3; w++ {
			t.Run(fmt.Sprintf("reader%d", w), func(t *testing.T) {
				t.Parallel()
				deadline := time.Now().Add(2 * time.Second)
				for rounds := 0; time.Now().Before(deadline); rounds++ {
					if _, err := dc.coord.Total(); err != nil {
						t.Fatalf("round %d: TOTAL failed despite a live replica per block: %v", rounds, err)
					}
					if _, err := dc.coord.GroupBy("item", "region"); err != nil {
						t.Fatalf("round %d: GROUPBY failed despite a live replica per block: %v", rounds, err)
					}
				}
			})
		}
	})

	close(stop)
	chaos.Wait()
	if t.Failed() {
		return
	}

	// Quiesce: wait until the rejoin loop has cleared every eviction,
	// then fold the acknowledged deltas into the reference cube.
	waitAllUp(t, dc.coord)
	for _, rows := range acked {
		applyRef(t, ref, rows)
	}
	assertCoordMatches(t, dc.coord, ref, "after churn quiesced")

	// Kill the victim's sibling: block 0 is now answerable only by the
	// many-times-crashed replica, so exactness here means the data
	// directory carried every acknowledged delta through every kill.
	dc.nodes[2].Crash()
	probe := []server.Row{{Coords: blockCell(n0, 1), Value: 3}}
	if _, _, err := dc.coord.Delta(probe, 0); err != nil {
		t.Fatalf("ingest after sibling crash: %v", err)
	}
	applyRef(t, ref, probe)
	assertCoordMatches(t, dc.coord, ref, "churned replica alone")

	s := dc.coord.Stats()
	t.Logf("durable churn stats: %d deltas, %d downs, %d rejoins, %d catch-up records",
		s.Deltas, s.ReplicaDowns, s.Rejoins, s.CatchupRecords)
	if s.ReplicaDowns > 0 && s.Rejoins == 0 {
		t.Fatalf("replicas were evicted but never rejoined: %+v", s)
	}
}

// waitAllUp polls until no replica is marked down, i.e. every eviction
// has been repaired by the rejoin loop.
func waitAllUp(t *testing.T, c *Coordinator) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		up := true
		for _, g := range c.groups() {
			for _, r := range g.replicaList() {
				if r.down.Load() {
					up = false
				}
			}
		}
		if up {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("replicas still down after churn stopped (stats %+v)", c.Stats())
}
