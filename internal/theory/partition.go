package theory

import (
	"container/heap"
	"fmt"

	"parcube/internal/nd"
)

// GreedyPartition implements the paper's Figure 6 algorithm: choose
// k_0..k_{n-1} with sum k_j = logP minimizing the total communication
// volume sum_j (2^{k_j} - 1) C_j. Starting from k = 0, it repeatedly
// increments the position with the smallest marginal cost, which for
// position j at level k_j is 2^{k_j} * C_j (incrementing k_j adds exactly
// that much volume), then doubles the weight — Theorem 8 proves this greedy
// is optimal because the marginal costs along each position are
// non-decreasing.
//
// Positions whose extent cannot be sliced further (2^{k_j+1} > D_j) are
// excluded from further increments, a practical refinement the paper's
// unconstrained statement does not need.
func GreedyPartition(sizes nd.Shape, logP int) ([]int, error) {
	n := sizes.Rank()
	if logP < 0 {
		return nil, fmt.Errorf("theory: negative log2 processor count %d", logP)
	}
	maxSlices := 0
	for _, d := range sizes {
		for s := 1; s*2 <= d; s *= 2 {
			maxSlices++
		}
	}
	if logP > maxSlices {
		return nil, fmt.Errorf("theory: 2^%d processors cannot partition shape %v", logP, sizes)
	}
	k := make([]int, n)
	h := &weightHeap{}
	for j := 0; j < n; j++ {
		if sizes[j] >= 2 {
			heap.Push(h, weight{w: Coefficient(sizes, j), pos: j})
		}
	}
	for step := 0; step < logP; step++ {
		top := heap.Pop(h).(weight)
		j := top.pos
		k[j]++
		if 1<<uint(k[j]+1) <= sizes[j] {
			heap.Push(h, weight{w: top.w * 2, pos: j})
		}
	}
	return k, nil
}

type weight struct {
	w   int64
	pos int
}

// weightHeap is a min-heap of marginal costs with deterministic tie-breaks
// (lower position first), so GreedyPartition is reproducible.
type weightHeap []weight

func (h weightHeap) Len() int { return len(h) }
func (h weightHeap) Less(i, j int) bool {
	if h[i].w != h[j].w {
		return h[i].w < h[j].w
	}
	return h[i].pos < h[j].pos
}
func (h weightHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *weightHeap) Push(x interface{}) { *h = append(*h, x.(weight)) }
func (h *weightHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// EnumeratePartitions calls fn with every composition of logP into n
// non-negative parts k (sum k_j = logP). The slice is reused; fn must not
// retain it. Used by the exhaustive optimality cross-check.
func EnumeratePartitions(n, logP int, fn func(k []int)) {
	k := make([]int, n)
	var rec func(pos, left int)
	rec = func(pos, left int) {
		if pos == n-1 {
			k[pos] = left
			fn(k)
			return
		}
		for v := 0; v <= left; v++ {
			k[pos] = v
			rec(pos+1, left-v)
		}
	}
	if n == 0 {
		return
	}
	rec(0, logP)
}

// OptimalPartitionExhaustive finds the minimum-volume feasible partition by
// enumerating all compositions — exponentially many, so only for tests and
// small n. Ties resolve to the lexicographically smallest k, matching no
// particular greedy property; compare volumes, not vectors.
func OptimalPartitionExhaustive(sizes nd.Shape, logP int) ([]int, int64, error) {
	var bestK []int
	var bestV int64 = -1
	EnumeratePartitions(sizes.Rank(), logP, func(k []int) {
		if validatePartition(sizes, k) != nil {
			return
		}
		v := TotalVolumeClosedForm(sizes, k)
		if bestV < 0 || v < bestV {
			bestV = v
			bestK = append(bestK[:0], k...)
		}
	})
	if bestV < 0 {
		return nil, 0, fmt.Errorf("theory: no feasible partition of %v into 2^%d", sizes, logP)
	}
	return bestK, bestV, nil
}

// PartsOf converts log2 slice counts to slice counts: parts[j] = 2^{k_j}.
func PartsOf(k []int) []int {
	parts := make([]int, len(k))
	for j, kj := range k {
		parts[j] = 1 << uint(kj)
	}
	return parts
}

// NumProcs returns the processor count implied by k: 2^{sum k_j}.
func NumProcs(k []int) int {
	total := 0
	for _, kj := range k {
		total += kj
	}
	return 1 << uint(total)
}

// Dimensionality returns the number of positions with at least one cut —
// what Figures 7-9 call "one dimensional", "two dimensional", ... partitions.
func Dimensionality(k []int) int {
	d := 0
	for _, kj := range k {
		if kj > 0 {
			d++
		}
	}
	return d
}
