package theory

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parcube/internal/core"
	"parcube/internal/lattice"
	"parcube/internal/nd"
)

func TestEdgeVolumeThreeD(t *testing.T) {
	// 3-D sizes (D0,D1,D2) = (8,4,2), one cut on each dimension.
	sizes := nd.MustShape(8, 4, 2)
	k := []int{1, 1, 1}
	// First-level child dropping position 0: volume (2^1-1)*D1*D2 = 8.
	if got := EdgeVolume(sizes, k, 0, 0); got != 8 {
		t.Fatalf("edge {0} = %d", got)
	}
	// Child dropping position 2 from prefix {0}: (2^1-1)*D1 = 4.
	if got := EdgeVolume(sizes, k, lattice.DimSet(0b001), 2); got != 4 {
		t.Fatalf("edge {0,2} = %d", got)
	}
	// Grand total from prefix {0,1}: (2^1-1)*1 = 1.
	if got := EdgeVolume(sizes, k, lattice.DimSet(0b011), 2); got != 1 {
		t.Fatalf("edge {0,1,2} = %d", got)
	}
	// Unpartitioned dimension: zero volume.
	if got := EdgeVolume(sizes, []int{0, 1, 1}, 0, 0); got != 0 {
		t.Fatalf("k=0 edge = %d", got)
	}
}

func TestClosedFormMatchesDirectSum(t *testing.T) {
	cases := []struct {
		sizes nd.Shape
		k     []int
	}{
		{nd.MustShape(8, 4, 2), []int{1, 1, 1}},
		{nd.MustShape(8, 4, 2), []int{3, 0, 0}},
		{nd.MustShape(16, 16, 16, 16), []int{1, 1, 1, 0}},
		{nd.MustShape(64, 32, 16, 8), []int{2, 1, 1, 0}},
		{nd.MustShape(7, 5, 3), []int{1, 2, 0}},
		{nd.MustShape(9), []int{3}},
		{nd.MustShape(5, 5), []int{0, 0}},
	}
	for _, c := range cases {
		direct := TotalVolume(c.sizes, c.k)
		closed := TotalVolumeClosedForm(c.sizes, c.k)
		if direct != closed {
			t.Fatalf("sizes %v k %v: direct %d != closed %d", c.sizes, c.k, direct, closed)
		}
	}
}

// Property (Theorem 3): the closed form equals the edge-by-edge sum for
// random shapes and partitions.
func TestQuickClosedForm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5) + 1
		sizes := make(nd.Shape, n)
		k := make([]int, n)
		for j := range sizes {
			sizes[j] = 1 << uint(rng.Intn(5)) // 1..16
			if sizes[j] > 1 {
				k[j] = rng.Intn(3)
			}
		}
		return TotalVolume(sizes, k) == TotalVolumeClosedForm(sizes, k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSection2SingleDimExample(t *testing.T) {
	// Section 2: partitioning along a single dimension, the first-level
	// reduction is needed only for the child dropping that dimension, so
	// cutting the LARGEST dimension (position 0) yields the least volume —
	// "the minimal communication volume is achieved by partitioning along
	// the dimension C" with ascending paper letters. Closed-form
	// coefficients C_j therefore increase with position j.
	sizes := nd.MustShape(16, 8, 4)
	v0 := SingleDimVolume(sizes, 0, 3)
	v1 := SingleDimVolume(sizes, 1, 3)
	v2 := SingleDimVolume(sizes, 2, 3)
	if !(v0 < v1 && v1 < v2) {
		t.Fatalf("single-dim volumes %d, %d, %d not increasing with position", v0, v1, v2)
	}
}

func TestGreedyPartitionMatchesExhaustive(t *testing.T) {
	cases := []struct {
		sizes nd.Shape
		logP  int
	}{
		{nd.MustShape(64, 64, 64, 64), 3},
		{nd.MustShape(64, 64, 64, 64), 4},
		{nd.MustShape(128, 64, 32, 16), 4},
		{nd.MustShape(8, 4, 2), 3},
		{nd.MustShape(100, 10), 5},
		{nd.MustShape(16, 16, 16), 0},
		{nd.MustShape(1024, 2), 6},
	}
	for _, c := range cases {
		k, err := GreedyPartition(c.sizes, c.logP)
		if err != nil {
			t.Fatalf("greedy(%v, %d): %v", c.sizes, c.logP, err)
		}
		if err := validatePartition(c.sizes, k); err != nil {
			t.Fatalf("greedy produced invalid partition: %v", err)
		}
		if NumProcs(k) != 1<<uint(c.logP) {
			t.Fatalf("greedy(%v, %d) = %v: wrong processor count", c.sizes, c.logP, k)
		}
		_, bestV, err := OptimalPartitionExhaustive(c.sizes, c.logP)
		if err != nil {
			t.Fatal(err)
		}
		if got := TotalVolumeClosedForm(c.sizes, k); got != bestV {
			t.Fatalf("greedy(%v, %d) volume %d != optimal %d (k=%v)", c.sizes, c.logP, got, bestV, k)
		}
	}
}

// Property (Theorem 8): greedy equals exhaustive optimum on random
// power-of-two shapes.
func TestQuickGreedyOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4) + 1
		sizes := make(nd.Shape, n)
		for j := range sizes {
			sizes[j] = 1 << uint(rng.Intn(6)+1) // 2..64
		}
		logP := rng.Intn(5)
		k, err := GreedyPartition(sizes, logP)
		if err != nil {
			return true // infeasible requested count: nothing to compare
		}
		_, bestV, err := OptimalPartitionExhaustive(sizes, logP)
		if err != nil {
			return false
		}
		return TotalVolumeClosedForm(sizes, k) == bestV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyPartitionPrefersMoreDimensions(t *testing.T) {
	// Paper (Figures 7-9): for equal-sized 4-D arrays on 8 processors the
	// three-dimensional partition (1,1,1,0) wins; on 16 processors the
	// four-dimensional (1,1,1,1) wins.
	sizes := nd.MustShape(64, 64, 64, 64)
	k8, err := GreedyPartition(sizes, 3)
	if err != nil {
		t.Fatal(err)
	}
	if Dimensionality(k8) != 3 {
		t.Fatalf("8-proc greedy = %v", k8)
	}
	k16, err := GreedyPartition(sizes, 4)
	if err != nil {
		t.Fatal(err)
	}
	if Dimensionality(k16) != 4 {
		t.Fatalf("16-proc greedy = %v", k16)
	}
}

func TestGreedyPartitionErrors(t *testing.T) {
	if _, err := GreedyPartition(nd.MustShape(2, 2), -1); err == nil {
		t.Fatal("negative logP accepted")
	}
	if _, err := GreedyPartition(nd.MustShape(2, 2), 3); err == nil {
		t.Fatal("infeasible processor count accepted")
	}
}

func TestGreedyRespectsExtentLimits(t *testing.T) {
	// A dimension of extent 2 can absorb at most one cut.
	k, err := GreedyPartition(nd.MustShape(2, 1024), 5)
	if err != nil {
		t.Fatal(err)
	}
	if k[0] > 1 {
		t.Fatalf("extent-2 dimension cut %d times", k[0])
	}
	if k[0]+k[1] != 5 {
		t.Fatalf("cuts = %v", k)
	}
}

func TestEnumeratePartitions(t *testing.T) {
	count := 0
	sum := -1
	EnumeratePartitions(3, 4, func(k []int) {
		count++
		s := k[0] + k[1] + k[2]
		if sum == -1 {
			sum = s
		}
		if s != 4 {
			t.Fatalf("composition %v does not sum to 4", k)
		}
	})
	// C(4+2,2) = 15 compositions.
	if count != 15 {
		t.Fatalf("enumerated %d compositions", count)
	}
	EnumeratePartitions(0, 3, func([]int) { t.Fatal("n=0 enumerated") })
}

func TestTheorem6SortedOrderingMinimizesVolume(t *testing.T) {
	// Exhaustive over orderings: the descending-size ordering achieves the
	// minimum volume (with greedily optimal partitions per ordering).
	shapes := []nd.Shape{
		nd.MustShape(64, 16, 4),
		nd.MustShape(128, 64, 32, 16),
		nd.MustShape(100, 20, 4),
		nd.MustShape(32, 32, 8),
	}
	for _, sizes := range shapes {
		for _, logP := range []int{2, 3, 4} {
			sortedV, _, err := VolumeForOrdering(sizes, core.SortedOrdering(sizes), logP)
			if err != nil {
				t.Fatal(err)
			}
			best := int64(-1)
			Permutations(sizes.Rank(), func(perm []int) {
				v, _, err := VolumeForOrdering(sizes, core.Ordering(perm), logP)
				if err != nil {
					return
				}
				if best < 0 || v < best {
					best = v
				}
			})
			if sortedV != best {
				t.Fatalf("sizes %v logP %d: sorted ordering volume %d != best %d", sizes, logP, sortedV, best)
			}
		}
	}
}

func TestTheorem7SortedOrderingMinimizesComputation(t *testing.T) {
	shapes := []nd.Shape{
		nd.MustShape(64, 16, 4),
		nd.MustShape(128, 64, 32, 16),
		nd.MustShape(7, 5, 3, 2),
	}
	for _, sizes := range shapes {
		sorted := core.SortedOrdering(sizes).Apply(sizes)
		if got, want := ComputationCost(sorted), MinimalParentCost(sizes); got != want {
			t.Fatalf("sizes %v: aggregation-tree cost %d != minimal-parent cost %d", sizes, got, want)
		}
		// And any non-sorted ordering with distinct sizes costs strictly more.
		Permutations(sizes.Rank(), func(perm []int) {
			ordered := core.Ordering(perm).Apply(sizes)
			if ordered.SortedDescending() {
				return
			}
			if ComputationCost(ordered) < ComputationCost(sorted) {
				t.Fatalf("sizes %v: ordering %v beats sorted", sizes, perm)
			}
		})
	}
}

func TestFirstLevelDominates(t *testing.T) {
	// Paper: with n=4 equal dimensions and a dense array, ~98% of updates
	// are at the first level.
	sizes := nd.MustShape(64, 64, 64, 64)
	frac := float64(FirstLevelCost(sizes)) / float64(ComputationCost(sizes))
	if frac < 0.95 {
		t.Fatalf("first-level share = %.3f", frac)
	}
}

func TestHelperAccessors(t *testing.T) {
	k := []int{2, 0, 1}
	parts := PartsOf(k)
	if parts[0] != 4 || parts[1] != 1 || parts[2] != 2 {
		t.Fatalf("PartsOf = %v", parts)
	}
	if NumProcs(k) != 8 {
		t.Fatalf("NumProcs = %d", NumProcs(k))
	}
	if Dimensionality(k) != 2 {
		t.Fatalf("Dimensionality = %d", Dimensionality(k))
	}
}

// Property: total volume is monotone in every k_j (each extra cut adds
// (2^{k_j}) * C_j), and zero exactly when no dimension is cut.
func TestQuickVolumeMonotoneInCuts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4) + 2
		sizes := make(nd.Shape, n)
		for j := range sizes {
			sizes[j] = 1 << uint(rng.Intn(4)+2) // 4..32
		}
		k := make([]int, n)
		for j := range k {
			k[j] = rng.Intn(2)
		}
		base := TotalVolumeClosedForm(sizes, k)
		j := rng.Intn(n)
		if 1<<uint(k[j]+1) > sizes[j] {
			return true
		}
		k[j]++
		bumped := TotalVolumeClosedForm(sizes, k)
		if bumped <= base {
			return false
		}
		zero := make([]int, n)
		return TotalVolumeClosedForm(sizes, zero) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the greedy partition never cuts a dimension more than its
// extent supports, and refining the machine (logP+1) never reduces volume.
func TestQuickGreedyMachineGrowth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3) + 2
		sizes := make(nd.Shape, n)
		for j := range sizes {
			sizes[j] = 1 << uint(rng.Intn(5)+1)
		}
		logP := rng.Intn(4)
		k1, err1 := GreedyPartition(sizes, logP)
		k2, err2 := GreedyPartition(sizes, logP+1)
		if err1 != nil || err2 != nil {
			return true // infeasible machine for this shape
		}
		for j := range k1 {
			if 1<<uint(k1[j]) > sizes[j] || 1<<uint(k2[j]) > sizes[j] {
				return false
			}
		}
		return TotalVolumeClosedForm(sizes, k2) >= TotalVolumeClosedForm(sizes, k1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
