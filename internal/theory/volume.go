// Package theory implements the paper's analytic results: the per-edge
// communication volume of the parallel algorithm (Lemma 1), the closed-form
// total volume (Theorem 3), computation-cost accounting for orderings
// (Theorems 6 and 7), and the greedy O(n + k log n) partitioning algorithm
// with its optimality guarantee (Theorem 8, Figure 6).
//
// Everything here works in *position space*: sizes[j] is the extent of the
// dimension at aggregation-tree position j, and k[j] is the log2 of the
// number of processor slices along that dimension. Volumes are counted in
// elements; multiply by the element width for bytes.
package theory

import (
	"fmt"

	"parcube/internal/core"
	"parcube/internal/lattice"
	"parcube/internal/nd"
)

// EdgeVolume returns the Lemma 1 communication volume (in elements) for
// computing the aggregation-tree node whose prefix set is prefix ∪ {j} from
// the node with prefix set prefix: (2^{k_j} - 1) * prod_{i not in
// prefix ∪ {j}} D_i. It is exact for uneven blocks too, because the lead
// slabs of the participating groups tile the child array exactly.
func EdgeVolume(sizes nd.Shape, k []int, prefix lattice.DimSet, j int) int64 {
	vol := int64(1)<<uint(k[j]) - 1
	for i := range sizes {
		if i != j && !prefix.Has(i) {
			vol *= int64(sizes[i])
		}
	}
	return vol
}

// TotalVolume returns the total communication volume of parallel cube
// construction with the aggregation tree, by summing Lemma 1 over every
// tree edge. TotalVolumeClosedForm computes the same quantity analytically;
// the two agreeing is the Theorem 3 cross-check.
func TotalVolume(sizes nd.Shape, k []int) int64 {
	n := sizes.Rank()
	var total int64
	// Every non-empty prefix set S' contributes one edge, aggregated along
	// j = max(S') from its parent S' \ {j}.
	for m := lattice.DimSet(1); m <= lattice.Full(n); m++ {
		dims := m.Dims()
		j := dims[len(dims)-1]
		total += EdgeVolume(sizes, k, m.Without(j), j)
	}
	return total
}

// TotalVolumeClosedForm returns the Theorem 3 closed form:
//
//	V = sum_{j=0}^{n-1} (2^{k_j} - 1) * prod_{i<j} (1 + D_i) * prod_{i>j} D_i
//
// obtained by grouping the Lemma 1 edges by their aggregated position j.
func TotalVolumeClosedForm(sizes nd.Shape, k []int) int64 {
	var total int64
	for j := range sizes {
		total += (int64(1)<<uint(k[j]) - 1) * Coefficient(sizes, j)
	}
	return total
}

// Coefficient returns C_j = prod_{i<j} (1 + D_i) * prod_{i>j} D_i, the
// weight multiplying (2^{k_j} - 1) in the closed form. The paper's
// partitioning algorithm minimizes sum_j (2^{k_j} - 1) C_j.
func Coefficient(sizes nd.Shape, j int) int64 {
	c := int64(1)
	for i := range sizes {
		switch {
		case i < j:
			c *= int64(sizes[i]) + 1
		case i > j:
			c *= int64(sizes[i])
		}
	}
	return c
}

// ComputationCost returns the total accumulator updates performed by the
// aggregation-tree construction: each node costs one update per cell of its
// tree parent. Sizes are in position space.
func ComputationCost(sizes nd.Shape) int64 {
	n := sizes.Rank()
	l, err := lattice.New(sizes)
	if err != nil {
		panic(err)
	}
	tr, err := core.Build(n)
	if err != nil {
		panic(err)
	}
	return tr.SpanningTree().ComputationCost(l)
}

// FirstLevelCost returns the updates spent at the first level of the tree
// (computing the n children of the root), used for the paper's observation
// that the dominant, fully parallelized share of the work is at level one.
func FirstLevelCost(sizes nd.Shape) int64 {
	return int64(sizes.Rank()) * int64(sizes.Size())
}

// MinimalParentCost returns the computation cost of the minimal-parent
// spanning tree — the cheapest possible cost for any spanning tree.
// Theorem 7: the aggregation tree attains it iff sizes are descending.
func MinimalParentCost(sizes nd.Shape) int64 {
	l, err := lattice.New(sizes)
	if err != nil {
		panic(err)
	}
	return lattice.MinimalParentTree(l).ComputationCost(l)
}

// Permutations calls fn with every permutation of 0..n-1. Used by the
// Theorem 6/7 exhaustive checks; n must stay small.
func Permutations(n int, fn func(perm []int)) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			fn(perm)
			return
		}
		for j := i; j < n; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
}

// VolumeForOrdering returns the minimum total communication volume
// achievable for the given ordering of physical sizes, optimizing the
// partition with the greedy algorithm. logP is log2 of the processor count.
func VolumeForOrdering(sizes nd.Shape, ordering core.Ordering, logP int) (int64, []int, error) {
	if err := ordering.Validate(sizes.Rank()); err != nil {
		return 0, nil, err
	}
	ordered := ordering.Apply(sizes)
	k, err := GreedyPartition(ordered, logP)
	if err != nil {
		return 0, nil, err
	}
	return TotalVolumeClosedForm(ordered, k), k, nil
}

// SingleDimVolume returns the total volume when all 2^logP slices are along
// position j — the Section 2 single-dimension partitioning example.
func SingleDimVolume(sizes nd.Shape, j, logP int) int64 {
	k := make([]int, sizes.Rank())
	k[j] = logP
	return TotalVolumeClosedForm(sizes, k)
}

// validatePartition checks k against the shape.
func validatePartition(sizes nd.Shape, k []int) error {
	if len(k) != sizes.Rank() {
		return fmt.Errorf("theory: partition %v does not match rank %d", k, sizes.Rank())
	}
	for j, kj := range k {
		if kj < 0 {
			return fmt.Errorf("theory: negative k[%d]", j)
		}
		if 1<<uint(kj) > sizes[j] {
			return fmt.Errorf("theory: 2^%d slices exceed extent %d on position %d", kj, sizes[j], j)
		}
	}
	return nil
}
