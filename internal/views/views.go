// Package views implements partial data cube materialization, the future
// work the paper points at in its conclusion ("we believe that the results
// we have obtained here could form the basis for work on partial data cube
// construction"). It provides the classic benefit-greedy view selection of
// Harinarayan, Rajaraman and Ullman (reference [6] of the paper) over the
// same lattice the full-cube algorithms use, plus a query router that
// answers any group-by from its cheapest materialized ancestor.
package views

import (
	"fmt"
	"sort"

	"parcube/internal/agg"
	"parcube/internal/array"
	"parcube/internal/lattice"
)

// Selection is the result of view selection.
type Selection struct {
	// Views are the chosen group-bys, in pick order (the root is implicit
	// and always available).
	Views []lattice.DimSet
	// TotalBenefit is the accumulated benefit of the picks, in cost units
	// (cells scanned per uniform query workload).
	TotalBenefit int64
}

// SelectGreedy picks up to budget group-bys to materialize, maximizing the
// benefit under the linear cost model: answering query q from materialized
// view v (v a superset of q) costs size(v) cell scans; the root is always
// available at rootCost (pass the input's stored-cell count for sparse
// inputs, or l.SizeOf(full) for the classic dense model). Each round picks
// the view with the largest total cost reduction over all queries, the 1-1/e
// approximation of the optimal selection.
func SelectGreedy(l *lattice.Lattice, budget int, rootCost int64) Selection {
	n := l.N()
	full := lattice.Full(n)
	if rootCost <= 0 {
		rootCost = l.SizeOf(full)
	}
	// cost[q] = cheapest way to answer q so far.
	cost := make(map[lattice.DimSet]int64, 1<<uint(n))
	for q := lattice.DimSet(0); q <= full; q++ {
		cost[q] = rootCost
	}
	cost[full] = rootCost

	chosen := make(map[lattice.DimSet]bool)
	var sel Selection
	for pick := 0; pick < budget; pick++ {
		var bestView lattice.DimSet
		var bestBenefit int64 = -1
		for v := lattice.DimSet(0); v < full; v++ {
			if chosen[v] {
				continue
			}
			var benefit int64
			vSize := l.SizeOf(v)
			for q := lattice.DimSet(0); q < full; q++ {
				if q&v == q && cost[q] > vSize {
					benefit += cost[q] - vSize
				}
			}
			if benefit > bestBenefit {
				bestBenefit = benefit
				bestView = v
			}
		}
		if bestBenefit <= 0 {
			break
		}
		chosen[bestView] = true
		sel.Views = append(sel.Views, bestView)
		sel.TotalBenefit += bestBenefit
		vSize := l.SizeOf(bestView)
		for q := lattice.DimSet(0); q < full; q++ {
			if q&bestView == q && cost[q] > vSize {
				cost[q] = vSize
			}
		}
	}
	return sel
}

// Materialize computes the selected group-bys directly from the input.
func Materialize(input *array.Sparse, views []lattice.DimSet, op agg.Op) (map[lattice.DimSet]*array.Dense, error) {
	out := make(map[lattice.DimSet]*array.Dense, len(views))
	for _, v := range views {
		if _, dup := out[v]; dup {
			return nil, fmt.Errorf("views: view %b selected twice", v)
		}
		a, _ := array.ProjectSparse(input, v.Dims(), op, agg.FoldInput)
		out[v] = a
	}
	return out, nil
}

// Router answers group-by queries from a partially materialized cube.
type Router struct {
	input *array.Sparse
	op    agg.Op
	views map[lattice.DimSet]*array.Dense
	n     int
}

// NewRouter builds a router over the input array and materialized views.
func NewRouter(input *array.Sparse, op agg.Op, views map[lattice.DimSet]*array.Dense) (*Router, error) {
	if !op.Valid() {
		return nil, fmt.Errorf("views: invalid operator %v", op)
	}
	n := input.Shape().Rank()
	for v, a := range views {
		want := input.Shape().Keep(v.Dims())
		if !a.Shape().Equal(want) {
			return nil, fmt.Errorf("views: view %b has shape %v, want %v", v, a.Shape(), want)
		}
	}
	return &Router{input: input, op: op, views: views, n: n}, nil
}

// Source describes where a query was answered from.
type Source struct {
	// View is the materialized ancestor used; valid when FromRoot is false.
	View lattice.DimSet
	// FromRoot reports that the query fell back to scanning the input.
	FromRoot bool
	// ScanCost is the number of cells scanned.
	ScanCost int64
}

// Plan returns the cheapest source for a query without executing it.
func (r *Router) Plan(q lattice.DimSet) (Source, error) {
	if q&lattice.Full(r.n) != q {
		return Source{}, fmt.Errorf("views: query %b outside %d dimensions", q, r.n)
	}
	best := Source{FromRoot: true, ScanCost: int64(r.input.NNZ())}
	for v, a := range r.views {
		if q&v == q && int64(a.Size()) < best.ScanCost {
			best = Source{View: v, ScanCost: int64(a.Size())}
		}
	}
	return best, nil
}

// Answer computes the group-by q from its cheapest source.
func (r *Router) Answer(q lattice.DimSet) (*array.Dense, Source, error) {
	src, err := r.Plan(q)
	if err != nil {
		return nil, Source{}, err
	}
	if src.FromRoot {
		a, _ := array.ProjectSparse(r.input, q.Dims(), r.op, agg.FoldInput)
		return a, src, nil
	}
	view := r.views[src.View]
	if src.View == q {
		return view.Clone(), src, nil
	}
	// Keep the positions of q's dimensions within the view's axis list.
	viewDims := src.View.Dims()
	keep := make([]int, 0, q.Count())
	for i, d := range viewDims {
		if q.Has(d) {
			keep = append(keep, i)
		}
	}
	sort.Ints(keep)
	a, _ := array.ProjectDense(view, keep, r.op)
	return a, src, nil
}

// SelectGreedyUnderSpace is SelectGreedy under a storage budget instead of
// a view count: each round picks the view with the best benefit per stored
// cell among those that still fit, stopping when nothing fits or helps.
// This is the classic space-budgeted variant of the benefit greedy.
func SelectGreedyUnderSpace(l *lattice.Lattice, maxCells int64, rootCost int64) Selection {
	n := l.N()
	full := lattice.Full(n)
	if rootCost <= 0 {
		rootCost = l.SizeOf(full)
	}
	cost := make(map[lattice.DimSet]int64, 1<<uint(n))
	for q := lattice.DimSet(0); q <= full; q++ {
		cost[q] = rootCost
	}
	chosen := make(map[lattice.DimSet]bool)
	var sel Selection
	var used int64
	for {
		var bestView lattice.DimSet
		var bestBenefit int64 = -1
		var bestRate float64 = -1
		for v := lattice.DimSet(0); v < full; v++ {
			if chosen[v] {
				continue
			}
			vSize := l.SizeOf(v)
			if used+vSize > maxCells {
				continue
			}
			var benefit int64
			for q := lattice.DimSet(0); q < full; q++ {
				if q&v == q && cost[q] > vSize {
					benefit += cost[q] - vSize
				}
			}
			rate := float64(benefit) / float64(vSize)
			if benefit > 0 && rate > bestRate {
				bestRate = rate
				bestBenefit = benefit
				bestView = v
			}
		}
		if bestBenefit <= 0 {
			return sel
		}
		chosen[bestView] = true
		sel.Views = append(sel.Views, bestView)
		sel.TotalBenefit += bestBenefit
		vSize := l.SizeOf(bestView)
		used += vSize
		for q := lattice.DimSet(0); q < full; q++ {
			if q&bestView == q && cost[q] > vSize {
				cost[q] = vSize
			}
		}
	}
}
