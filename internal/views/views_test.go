package views

import (
	"math/rand"
	"testing"

	"parcube/internal/agg"
	"parcube/internal/array"
	"parcube/internal/lattice"
	"parcube/internal/nd"
)

func randomSparse(t *testing.T, shape nd.Shape, nnz int, seed int64) *array.Sparse {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b, err := array.NewSparseBuilder(shape, nil)
	if err != nil {
		t.Fatal(err)
	}
	coords := make([]int, shape.Rank())
	for i := 0; i < nnz; i++ {
		for d := range coords {
			coords[d] = rng.Intn(shape[d])
		}
		if err := b.Add(coords, float64(rng.Intn(9)+1)); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestSelectGreedyPicksLargestBenefitFirst(t *testing.T) {
	// Sizes 8x4x2: the first pick must be the view that slashes the most
	// query costs. With rootCost = |ABC| = 64, view BC (size 8) benefits
	// queries {BC, B, C, all}: 4 * (64-8) = 224; AB (32) benefits
	// 4 * 32 = 128; AC (16): 4 * 48 = 192. A single 1-D view, e.g. C
	// (size 2), benefits only {C, all}: 2 * 62 = 124. So BC wins.
	l, err := lattice.New(nd.MustShape(8, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	sel := SelectGreedy(l, 1, 0)
	if len(sel.Views) != 1 || sel.Views[0] != lattice.DimSet(0b110) {
		t.Fatalf("first pick = %v", sel.Views)
	}
	if sel.TotalBenefit != 224 {
		t.Fatalf("benefit = %d", sel.TotalBenefit)
	}
}

func TestSelectGreedyBudgetAndMonotonicity(t *testing.T) {
	l, _ := lattice.New(nd.MustShape(16, 8, 4, 2))
	prevBenefit := int64(-1)
	for budget := 0; budget <= 8; budget++ {
		sel := SelectGreedy(l, budget, 0)
		if len(sel.Views) > budget {
			t.Fatalf("budget %d: %d views", budget, len(sel.Views))
		}
		if sel.TotalBenefit < prevBenefit {
			t.Fatalf("benefit decreased at budget %d", budget)
		}
		prevBenefit = sel.TotalBenefit
		seen := make(map[lattice.DimSet]bool)
		for _, v := range sel.Views {
			if seen[v] {
				t.Fatalf("view %b picked twice", v)
			}
			seen[v] = true
		}
	}
}

func TestSelectGreedyStopsWhenNoBenefit(t *testing.T) {
	// With every proper view materialized, further picks add nothing; the
	// budget is not exhausted blindly.
	l, _ := lattice.New(nd.MustShape(2, 2))
	sel := SelectGreedy(l, 100, 0)
	if len(sel.Views) >= 100 {
		t.Fatalf("greedy did not stop: %d views", len(sel.Views))
	}
}

func TestMaterializeAndRouterAnswers(t *testing.T) {
	shape := nd.MustShape(8, 6, 4)
	input := randomSparse(t, shape, 60, 11)
	l, _ := lattice.New(shape)
	sel := SelectGreedy(l, 3, int64(input.NNZ()))
	mats, err := Materialize(input, sel.Views, agg.Sum)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(input, agg.Sum, mats)
	if err != nil {
		t.Fatal(err)
	}
	for q := lattice.DimSet(0); q < lattice.Full(3); q++ {
		got, src, err := r.Answer(q)
		if err != nil {
			t.Fatalf("query %b: %v", q, err)
		}
		want, _ := array.ProjectSparse(input, q.Dims(), agg.Sum, agg.FoldInput)
		if !got.AlmostEqual(want, 1e-9) {
			t.Fatalf("query %b from %+v wrong", q, src)
		}
		if src.ScanCost <= 0 {
			t.Fatalf("query %b: zero scan cost", q)
		}
	}
}

func TestRouterPlanPrefersCheapestView(t *testing.T) {
	shape := nd.MustShape(8, 6, 4)
	input := randomSparse(t, shape, 100, 13)
	mats, err := Materialize(input, []lattice.DimSet{0b011, 0b001}, agg.Sum)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := NewRouter(input, agg.Sum, mats)
	// Query A (0b001): exact view of size 8 beats AB (48) and root scan.
	src, err := r.Plan(0b001)
	if err != nil {
		t.Fatal(err)
	}
	if src.FromRoot || src.View != 0b001 || src.ScanCost != 8 {
		t.Fatalf("plan = %+v", src)
	}
	// Query B (0b010): from AB.
	src, _ = r.Plan(0b010)
	if src.FromRoot || src.View != 0b011 {
		t.Fatalf("plan for B = %+v", src)
	}
	// Query C (0b100): no materialized ancestor except root.
	src, _ = r.Plan(0b100)
	if !src.FromRoot {
		t.Fatalf("plan for C = %+v", src)
	}
}

func TestRouterExactViewClones(t *testing.T) {
	shape := nd.MustShape(4, 4)
	input := randomSparse(t, shape, 8, 17)
	mats, _ := Materialize(input, []lattice.DimSet{0b01}, agg.Sum)
	r, _ := NewRouter(input, agg.Sum, mats)
	got, _, err := r.Answer(0b01)
	if err != nil {
		t.Fatal(err)
	}
	got.Set(999, 0)
	again, _, _ := r.Answer(0b01)
	if again.At(0) == 999 {
		t.Fatal("Answer aliases the materialized view")
	}
}

func TestRouterValidation(t *testing.T) {
	shape := nd.MustShape(4, 4)
	input := randomSparse(t, shape, 5, 19)
	bad := map[lattice.DimSet]*array.Dense{
		0b01: array.NewDense(nd.MustShape(3), agg.Sum), // wrong shape
	}
	if _, err := NewRouter(input, agg.Sum, bad); err == nil {
		t.Fatal("wrong view shape accepted")
	}
	r, _ := NewRouter(input, agg.Sum, nil)
	if _, err := r.Plan(0b1000); err == nil {
		t.Fatal("out-of-range query accepted")
	}
	if _, err := NewRouter(input, agg.Op(99), nil); err == nil {
		t.Fatal("bad operator accepted")
	}
}

func TestMaterializeRejectsDuplicates(t *testing.T) {
	input := randomSparse(t, nd.MustShape(4, 4), 5, 23)
	if _, err := Materialize(input, []lattice.DimSet{1, 1}, agg.Sum); err == nil {
		t.Fatal("duplicate views accepted")
	}
}

func TestRouterCountOperator(t *testing.T) {
	// 6x4x2 input nearly dense (~42 stored cells) with view AB (24 cells):
	// answering A through the view beats rescanning the input.
	shape := nd.MustShape(6, 4, 2)
	input := randomSparse(t, shape, 100, 29)
	mats, _ := Materialize(input, []lattice.DimSet{0b011}, agg.Count)
	r, _ := NewRouter(input, agg.Count, mats)
	got, src, err := r.Answer(0b001)
	if err != nil {
		t.Fatal(err)
	}
	if src.FromRoot {
		t.Fatal("count query not routed through view")
	}
	want, _ := array.ProjectSparse(input, []int{0}, agg.Count, agg.FoldInput)
	if !got.Equal(want) {
		t.Fatalf("count from view = %v, want %v", got.Data(), want.Data())
	}
}

func TestSelectGreedyUnderSpace(t *testing.T) {
	l, _ := lattice.New(nd.MustShape(16, 8, 4))
	// Generous budget: behaves like the unbounded greedy (all useful views).
	big := SelectGreedyUnderSpace(l, 1<<20, 0)
	if len(big.Views) == 0 {
		t.Fatal("no views under a huge budget")
	}
	var usedBig int64
	for _, v := range big.Views {
		usedBig += l.SizeOf(v)
	}
	// Tight budget: fits within it and picks fewer views.
	tight := SelectGreedyUnderSpace(l, 40, 0)
	var used int64
	for _, v := range tight.Views {
		used += l.SizeOf(v)
	}
	if used > 40 {
		t.Fatalf("budget exceeded: %d cells", used)
	}
	if len(tight.Views) >= len(big.Views) && usedBig > 40 {
		t.Fatalf("tight budget selected %d views vs %d unbounded", len(tight.Views), len(big.Views))
	}
	// Zero budget: nothing fits.
	if got := SelectGreedyUnderSpace(l, 0, 0); len(got.Views) != 0 {
		t.Fatalf("views under zero budget: %v", got.Views)
	}
	// Benefit never negative, and views are distinct.
	seen := map[lattice.DimSet]bool{}
	for _, v := range big.Views {
		if seen[v] {
			t.Fatalf("duplicate view %b", v)
		}
		seen[v] = true
	}
}

func TestSelectGreedyUnderSpaceAnswersStillCorrect(t *testing.T) {
	shape := nd.MustShape(8, 6, 4)
	input := randomSparse(t, shape, 80, 31)
	l, _ := lattice.New(shape)
	sel := SelectGreedyUnderSpace(l, 60, int64(input.NNZ()))
	mats, err := Materialize(input, sel.Views, agg.Sum)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(input, agg.Sum, mats)
	if err != nil {
		t.Fatal(err)
	}
	for q := lattice.DimSet(0); q < lattice.Full(3); q++ {
		got, _, err := r.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := array.ProjectSparse(input, q.Dims(), agg.Sum, agg.FoldInput)
		if !got.AlmostEqual(want, 1e-9) {
			t.Fatalf("query %b wrong under space budget", q)
		}
	}
}
