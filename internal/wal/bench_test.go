package wal

import (
	"fmt"
	"testing"
	"time"
)

// benchPayload is a realistic delta record: a handful of coordinate
// lines, the shape the shard layer logs.
var benchPayload = []byte("3,1,4,1 5.5\n2,7,1,8 -2\n0,0,0,0 1\n")

// BenchmarkWALAppend measures append throughput under each fsync policy.
// The bytes/op accounting covers payload plus frame overhead, so the
// MB/s figure is the on-disk write rate a shard's ingest path sees.
func BenchmarkWALAppend(b *testing.B) {
	policies := []struct {
		name string
		opts Options
	}{
		{"never", Options{Fsync: FsyncNever}},
		{"interval", Options{Fsync: FsyncInterval, FsyncEvery: 50 * time.Millisecond}},
		{"always", Options{Fsync: FsyncAlways}},
	}
	for _, p := range policies {
		b.Run("fsync="+p.name, func(b *testing.B) {
			l, err := Open(b.TempDir(), p.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.ReportAllocs()
			b.SetBytes(int64(len(benchPayload)) + frameHeader)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(benchPayload); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(l.Syncs())/float64(b.N), "syncs/record")
		})
	}
}

// BenchmarkWALGroupCommit measures acked-delta throughput under
// fsync=always with the commit-waiter queue enabled: many concurrent
// appenders coalesce into one buffered write and one fsync per batch,
// so the per-record cost is the sync cost divided by the batch size.
// This is the figure the ingest path sees when every ack must be
// durable. Compare against BenchmarkWALAppend/fsync=always, which pays
// a full fsync per record.
func BenchmarkWALGroupCommit(b *testing.B) {
	waits := []struct {
		name string
		wait time.Duration
	}{
		{"wait=0", 0},
		{"wait=1ms", time.Millisecond},
	}
	for _, w := range waits {
		b.Run(w.name, func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{
				Fsync:       FsyncAlways,
				GroupCommit: true,
				CommitWait:  w.wait,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.ReportAllocs()
			b.SetBytes(int64(len(benchPayload)) + frameHeader)
			b.SetParallelism(256)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := l.Append(benchPayload); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(l.Syncs())/float64(b.N), "syncs/record")
		})
	}
}

// BenchmarkWALReplay measures recovery speed: how fast a restarting node
// re-reads its acknowledged deltas. The log is written once with 10k
// records; every iteration replays all of them from disk state.
func BenchmarkWALReplay(b *testing.B) {
	const records = 10_000
	dir := b.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if _, err := l.Append(benchPayload); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(records) * (int64(len(benchPayload)) + frameHeader))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Open(dir, Options{Fsync: FsyncNever})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		if err := r.Replay(0, func(rec Record) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatal(fmt.Errorf("replayed %d of %d records", n, records))
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(records), "records_per_replay")
}
