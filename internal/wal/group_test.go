package wal

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitStress is the commit-waiter wall: N goroutines × M
// appends against a group-committing log under FsyncAlways. Every
// append must come back with its own LSN, the LSNs must be dense, the
// replayed contents must match what each caller handed in, and the
// fsync count must be far below the record count — the whole point of
// the queue.
func TestGroupCommitStress(t *testing.T) {
	const (
		goroutines = 16
		perG       = 50
		records    = goroutines * perG
	)
	dir := t.TempDir()
	l, err := Open(dir, Options{
		Fsync:       FsyncAlways,
		GroupCommit: true,
		CommitWait:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	var (
		mu   sync.Mutex
		got  = make(map[uint64]string, records)
		errs []error
		wg   sync.WaitGroup
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				payload := fmt.Sprintf("g%d-i%d", g, i)
				lsn, err := l.Append([]byte(payload))
				mu.Lock()
				if err != nil {
					errs = append(errs, err)
				} else if prev, dup := got[lsn]; dup {
					errs = append(errs, fmt.Errorf("lsn %d handed to both %q and %q", lsn, prev, payload))
				} else {
					got[lsn] = payload
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if len(errs) > 0 {
		t.Fatalf("%d append errors, first: %v", len(errs), errs[0])
	}
	if len(got) != records {
		t.Fatalf("recorded %d distinct LSNs, want %d", len(got), records)
	}
	for lsn := uint64(1); lsn <= records; lsn++ {
		if _, ok := got[lsn]; !ok {
			t.Fatalf("LSN %d never assigned: LSNs are not dense", lsn)
		}
	}
	if last := l.LastLSN(); last != records {
		t.Fatalf("LastLSN = %d, want %d", last, records)
	}
	syncs := l.Syncs()
	if ratio := float64(syncs) / float64(records); ratio >= 0.25 {
		t.Fatalf("syncs_per_record = %.3f (%d syncs / %d records); group commit must amortize well below 1", ratio, syncs, records)
	}

	// Replay must hand back exactly the content each caller was acked for.
	replayed := 0
	err = l.Replay(0, func(rec Record) error {
		if want := got[rec.LSN]; string(rec.Payload) != want {
			return fmt.Errorf("lsn %d replayed %q, acked %q", rec.LSN, rec.Payload, want)
		}
		replayed++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if replayed != records {
		t.Fatalf("replayed %d records, want %d", replayed, records)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// And the durable reopened view agrees.
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if last := r.LastLSN(); last != records {
		t.Fatalf("reopened LastLSN = %d, want %d", last, records)
	}
}

// TestGroupCommitSequential checks the degenerate group of one: with no
// concurrency every append is its own leader and the log behaves
// exactly like the plain path.
func TestGroupCommitSequential(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Fsync: FsyncAlways, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := uint64(1); i <= 5; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("r%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != i {
			t.Fatalf("append %d got LSN %d", i, lsn)
		}
	}
	if l.LastLSN() != 5 {
		t.Fatalf("LastLSN = %d, want 5", l.LastLSN())
	}
}

// TestGroupCommitRotation drives a group-committing log across segment
// boundaries: batches must flush around rotations and replay densely.
func TestGroupCommitRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{
		Fsync:        FsyncAlways,
		GroupCommit:  true,
		CommitWait:   200 * time.Microsecond,
		SegmentBytes: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	const records = 200
	var wg sync.WaitGroup
	errc := make(chan error, records)
	for i := 0; i < records; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := l.Append([]byte(fmt.Sprintf("rotating-record-%04d", i))); err != nil {
				errc <- err
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	n := 0
	if err := r.Replay(0, func(rec Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != records {
		t.Fatalf("replayed %d of %d records across rotations", n, records)
	}
}

// TestAppendBatchAt covers the explicit-LSN batch path: one sync per
// batch, per-record idempotent skips, and gap rejection that keeps the
// already-written prefix.
func TestAppendBatchAt(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	batch := func(lo, hi uint64) []Record {
		var recs []Record
		for lsn := lo; lsn <= hi; lsn++ {
			recs = append(recs, Record{LSN: lsn, Payload: []byte(fmt.Sprintf("b%d", lsn))})
		}
		return recs
	}

	applied, err := l.AppendBatchAt(batch(1, 5))
	if err != nil || applied != 5 {
		t.Fatalf("first batch: applied=%d err=%v, want 5,nil", applied, err)
	}
	if s := l.Syncs(); s != 1 {
		t.Fatalf("first batch issued %d syncs, want 1", s)
	}

	// Overlapping redelivery: 3..7 applies only 6 and 7.
	applied, err = l.AppendBatchAt(batch(3, 7))
	if err != nil || applied != 2 {
		t.Fatalf("overlap batch: applied=%d err=%v, want 2,nil", applied, err)
	}

	// A gap fails from the gapped record on; the prefix stays.
	recs := batch(8, 9)
	recs = append(recs, Record{LSN: 20, Payload: []byte("gap")})
	recs = append(recs, Record{LSN: 21, Payload: []byte("after-gap")})
	applied, err = l.AppendBatchAt(recs)
	if err == nil {
		t.Fatal("gapped batch did not error")
	}
	if applied != 2 {
		t.Fatalf("gapped batch applied %d, want the 2-record prefix", applied)
	}
	if l.LastLSN() != 9 {
		t.Fatalf("LastLSN = %d after gapped batch, want 9", l.LastLSN())
	}

	// Entirely-duplicate batch: no records, no error, no sync.
	before := l.Syncs()
	applied, err = l.AppendBatchAt(batch(1, 9))
	if err != nil || applied != 0 {
		t.Fatalf("duplicate batch: applied=%d err=%v, want 0,nil", applied, err)
	}
	if l.Syncs() != before {
		t.Fatal("duplicate batch issued a sync")
	}

	want := uint64(1)
	if err := l.Replay(0, func(rec Record) error {
		if rec.LSN != want {
			return fmt.Errorf("replay LSN %d, want %d", rec.LSN, want)
		}
		if string(rec.Payload) != fmt.Sprintf("b%d", rec.LSN) {
			return fmt.Errorf("lsn %d replayed %q", rec.LSN, rec.Payload)
		}
		want++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want != 10 {
		t.Fatalf("replayed through %d, want 9 records", want-1)
	}
}

// TestAppendBatchAtRotation forces mid-batch segment rotation and
// verifies a reopened log replays the whole batch.
func TestAppendBatchAtRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for lsn := uint64(1); lsn <= 64; lsn++ {
		recs = append(recs, Record{LSN: lsn, Payload: []byte(fmt.Sprintf("batch-rotation-%04d", lsn))})
	}
	applied, err := l.AppendBatchAt(recs)
	if err != nil || applied != 64 {
		t.Fatalf("applied=%d err=%v, want 64,nil", applied, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.LastLSN() != 64 {
		t.Fatalf("reopened LastLSN = %d, want 64", r.LastLSN())
	}
	n := 0
	if err := r.Replay(0, func(rec Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 64 {
		t.Fatalf("replayed %d of 64 batch records", n)
	}
}
