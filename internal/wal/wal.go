// Package wal is a segmented, CRC-framed write-ahead log for the durable
// shard serving layer. Every acknowledged delta is appended as one record
// before the acknowledgement leaves the node, so a crashed process can
// replay its way back to the exact acknowledged state from disk.
//
// Layout: a log directory holds segment files named by the LSN of their
// first record,
//
//	wal-0000000000000001.seg
//	wal-0000000000000042.seg
//
// each starting with an 16-byte segment header (magic + first LSN) and
// holding a run of consecutive records:
//
//	+----------+----------+----------+------------------+
//	| len u32  | crc u32  | lsn u64  | payload len bytes|
//	+----------+----------+----------+------------------+
//
// len is the payload length; crc is IEEE CRC32 over the LSN (little
// endian) followed by the payload. LSNs are assigned densely starting at
// 1. On Open the last segment's tail is scanned record by record: a
// truncated frame or a CRC mismatch at the tail is the signature of a
// crash mid-append ("torn tail") and is truncated away; the same damage
// in the *interior* of the log is corruption and fails Open, because
// records after the damage were once acknowledged.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"parcube/internal/obs"
)

const (
	segMagic      = "PCWALSG1"
	segHeaderSize = len(segMagic) + 8 // magic + first-LSN u64
	frameHeader   = 4 + 4 + 8         // len u32 + crc u32 + lsn u64

	// MaxRecordBytes bounds one record's payload. The length field is
	// read back from disk before the payload allocation, so the decoder
	// refuses anything past this bound instead of trusting a corrupt
	// frame (the untrusted-alloc discipline, applied to file input).
	MaxRecordBytes = 16 << 20
)

// FsyncPolicy selects when appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs the segment after every append: an acknowledged
	// record survives kill -9. The default.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs at most once per Options.FsyncEvery, amortizing
	// the disk flush over a burst of appends; a crash can lose the
	// records appended since the last sync.
	FsyncInterval
	// FsyncNever leaves syncing to the OS (and Close). Fastest, weakest.
	FsyncNever
)

// String names the policy as accepted by ParsePolicy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParsePolicy parses "always", "interval", or "never".
func ParsePolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always", "":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// Options tunes a Log.
type Options struct {
	// Fsync is the sync policy for appends. Default FsyncAlways.
	Fsync FsyncPolicy
	// FsyncEvery is the minimum gap between syncs under FsyncInterval.
	// Default 100ms.
	FsyncEvery time.Duration
	// SegmentBytes rotates to a new segment once the current one exceeds
	// this size. Default 4 MiB.
	SegmentBytes int64
	// GroupCommit coalesces concurrent Appends into one buffered segment
	// write and one fsync (group commit): while a leader's sync is in
	// flight, later callers queue as commit waiters, and the next leader
	// commits the whole queue in a single batch. Every waiter still gets
	// its own dense LSN and is only woken after the covering sync lands,
	// so durability per record is unchanged — only the fsync count is
	// amortized.
	GroupCommit bool
	// CommitWait, when positive, is an artificial pause a group-commit
	// leader takes before draining the queue, trading latency for larger
	// groups. Zero (the default) relies on natural batching: the queue
	// grows while the previous leader's fsync is in flight.
	CommitWait time.Duration
	// Metrics receives the log's series (wal.group_size per committed
	// batch, wal.commit_wait_ns enqueue-to-durable latency); nil means a
	// private registry.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// ErrTrimmed reports a replay request below the log's retained floor:
// the records were deleted by TrimBelow after a checkpoint covered them.
var ErrTrimmed = errors.New("wal: requested records were trimmed")

// errTornHeader marks a segment whose header is missing, short, or
// inconsistent with its file name. On the log's last segment this is the
// signature of a crash between segment creation and the header becoming
// durable (the header precedes every frame in the file, so no record in
// such a segment was ever fsynced) and Open recovers by dropping the
// file; anywhere else it is interior corruption and fails Open.
var errTornHeader = errors.New("wal: torn segment header")

// errCrashed rejects every operation after Crash() dropped the handle.
// A shared value, not fmt.Errorf per rejection: the crashed check sits
// on the hot append path.
var errCrashed = errors.New("wal: log crashed")

// Record is one replayed log entry.
type Record struct {
	LSN     uint64
	Payload []byte
}

// Log is an append-only segmented write-ahead log. All methods are safe
// for concurrent use; appends are serialized internally.
type Log struct {
	dir  string
	opts Options

	mu        sync.Mutex
	seg       *os.File // active segment
	segStart  uint64   // first LSN of the active segment (0 = none open)
	segSize   int64    // bytes written to the active segment
	lastLSN   uint64   // highest appended LSN (0 = empty log)
	firstLSN  uint64   // lowest retained LSN (lastLSN+1 when empty/trimmed clean)
	lastSync  time.Time
	dirDirty  bool // a segment file was created since the last directory fsync
	crashed   bool // Crash() was called: the handle is gone, reject use
	syncCount int64

	// Group-commit queue (Options.GroupCommit). gmu guards the waiter
	// queue only and is never held across I/O: the leader drains the
	// queue under gmu, commits the batch under l.mu, then either hands
	// leadership to the first new waiter or retires.
	gmu     sync.Mutex
	gqueue  []*commitReq
	gleader bool

	groupSize    *obs.Histogram // records per committed group
	commitWaitNs *obs.Histogram // Append enqueue-to-durable latency
}

// commitReq is one Append waiting in the group-commit queue. done is
// closed once the record's covering fsync landed (or failed); lead is
// closed instead when the retiring leader promotes this waiter to
// commit the next batch (its own record included).
type commitReq struct {
	payload []byte
	lsn     uint64
	err     error
	done    chan struct{}
	lead    chan struct{}
}

// segName renders the file name for a segment whose first record is lsn.
//
//cubelint:ignore hot-fmt runs once per segment rotation, not per record
func segName(lsn uint64) string { return fmt.Sprintf("wal-%016x.seg", lsn) }

// parseSegName extracts the first LSN from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	var lsn uint64
	if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), "%016x", &lsn); err != nil {
		return 0, false
	}
	return lsn, true
}

// Open opens (or creates) the log in dir, scans every segment, truncates
// a torn tail, and positions the log for appending. Interior corruption
// — a bad frame with intact records after it — fails Open.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	l := &Log{
		dir: dir, opts: opts, firstLSN: 1,
		groupSize:    reg.Histogram("wal.group_size"),
		commitWaitNs: reg.Histogram("wal.commit_wait_ns"),
	}
	// A crash between segment creation and its header write (or power loss
	// before the header became durable) leaves a tail segment with a zero,
	// short, or garbled header. The header precedes every frame in the
	// file, so no record in such a segment was ever fsynced: this is torn-
	// tail damage, not corruption — drop the file and recover on whatever
	// precedes it. The file name still fixes the log position, so a
	// post-trim log does not restart at LSN 1.
	for len(segs) > 0 {
		start := segs[len(segs)-1]
		path := filepath.Join(dir, segName(start))
		if _, _, err := scanSegment(path, start, true); !errors.Is(err, errTornHeader) {
			break
		}
		if err := os.Remove(path); err != nil {
			return nil, fmt.Errorf("wal: removing segment with torn header: %w", err)
		}
		segs = segs[:len(segs)-1]
		if len(segs) == 0 {
			l.lastLSN = start - 1
			l.firstLSN = start
		}
	}
	if len(segs) == 0 {
		return l, nil
	}
	l.firstLSN = segs[0]
	// Validate every segment; only the last may be torn.
	for i, start := range segs {
		last := i == len(segs)-1
		want := start
		if i > 0 {
			// Segments must be LSN-contiguous with their predecessor.
			if start != l.lastLSN+1 {
				return nil, fmt.Errorf("wal: segment %s starts at lsn %d, previous segment ended at %d",
					segName(start), start, l.lastLSN)
			}
		}
		end, lastRec, err := scanSegment(filepath.Join(dir, segName(start)), start, last)
		if err != nil {
			if errors.Is(err, errTornHeader) {
				// The pre-pass cleared torn tail headers; damage here has
				// intact segments after it, so it is interior corruption.
				return nil, fmt.Errorf("wal: %s: bad segment header in log interior", segName(start))
			}
			return nil, err
		}
		if lastRec >= want {
			l.lastLSN = lastRec
		} else if !last {
			return nil, fmt.Errorf("wal: segment %s holds no records", segName(start))
		}
		if last {
			l.segStart = start
			l.segSize = end
		}
	}
	// Reopen the last segment for appending, truncating the torn tail.
	path := filepath.Join(l.dir, segName(l.segStart))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := f.Truncate(l.segSize); err != nil {
		cerr := f.Close()
		return nil, errors.Join(fmt.Errorf("wal: truncating torn tail of %s: %w", path, err), cerr)
	}
	if _, err := f.Seek(l.segSize, io.SeekStart); err != nil {
		cerr := f.Close()
		return nil, errors.Join(fmt.Errorf("wal: %w", err), cerr)
	}
	l.seg = f
	if l.lastLSN == 0 && l.segStart > 0 {
		// The only segment lost its every record to the torn tail; the
		// next append reuses its header's first LSN.
		l.lastLSN = l.segStart - 1
	}
	return l, nil
}

// listSegments returns the first-LSNs of the directory's segments,
// ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if lsn, ok := parseSegName(e.Name()); ok {
			segs = append(segs, lsn)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// scanSegment validates one segment file, returning the byte offset just
// past the last intact record and that record's LSN (start-1 when the
// segment holds none). When tornOK, a damaged or truncated tail frame is
// accepted (and excluded from the returned offset); otherwise it is an
// error.
func scanSegment(path string, start uint64, tornOK bool) (end int64, lastLSN uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	if len(data) < segHeaderSize || string(data[:len(segMagic)]) != segMagic {
		return 0, 0, fmt.Errorf("%w: %s: bad segment header", errTornHeader, path)
	}
	if got := binary.LittleEndian.Uint64(data[len(segMagic):]); got != start {
		return 0, 0, fmt.Errorf("%w: %s: header first-lsn %d does not match name", errTornHeader, path, got)
	}
	off := int64(segHeaderSize)
	lastLSN = start - 1
	want := start
	for {
		rec, n, ok := decodeFrame(data[off:], want)
		if !ok {
			if int64(len(data)) == off {
				return off, lastLSN, nil // clean end
			}
			if tornOK {
				return off, lastLSN, nil // torn tail: caller truncates
			}
			return 0, 0, fmt.Errorf("wal: %s: corrupt record at offset %d (lsn %d expected)", path, off, want)
		}
		lastLSN = rec.LSN
		want = rec.LSN + 1
		off += int64(n)
	}
}

// decodeFrame decodes one record frame from b, requiring LSN == want.
// It returns ok=false on truncation, CRC mismatch, an implausible
// length, or an out-of-order LSN.
func decodeFrame(b []byte, want uint64) (Record, int, bool) {
	if len(b) < frameHeader {
		return Record{}, 0, false
	}
	n := binary.LittleEndian.Uint32(b)
	if n > MaxRecordBytes || int64(frameHeader)+int64(n) > int64(len(b)) {
		return Record{}, 0, false
	}
	crc := binary.LittleEndian.Uint32(b[4:])
	lsn := binary.LittleEndian.Uint64(b[8:])
	payload := b[frameHeader : frameHeader+int(n)]
	if lsn != want || crcOf(lsn, payload) != crc {
		return Record{}, 0, false
	}
	return Record{LSN: lsn, Payload: payload}, frameHeader + int(n), true
}

// crcOf hashes a record's LSN and payload.
func crcOf(lsn uint64, payload []byte) uint32 {
	var lb [8]byte
	binary.LittleEndian.PutUint64(lb[:], lsn)
	h := crc32.NewIEEE()
	h.Write(lb[:])
	h.Write(payload)
	return h.Sum32()
}

// encodeFrame renders one record frame.
func encodeFrame(lsn uint64, payload []byte) []byte {
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crcOf(lsn, payload))
	binary.LittleEndian.PutUint64(buf[8:], lsn)
	copy(buf[frameHeader:], payload)
	return buf
}

// LastLSN returns the highest appended LSN (0 when the log is empty).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// FirstLSN returns the lowest LSN still retained (lastLSN+1 when none).
func (l *Log) FirstLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstLSN
}

// Syncs returns how many fsyncs the log has issued.
func (l *Log) Syncs() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncCount
}

// Append writes one record with the next LSN and returns it. The record
// is on stable storage when Append returns, under FsyncAlways. With
// Options.GroupCommit, concurrent Appends coalesce into one buffered
// write and one fsync; each caller still returns only after the sync
// covering its record landed.
//
//cubelint:hotpath per-record ingest write path
func (l *Log) Append(payload []byte) (uint64, error) {
	if l.opts.GroupCommit {
		return l.appendGrouped(payload)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := l.lastLSN + 1
	if err := l.appendLocked(lsn, payload); err != nil {
		return 0, err
	}
	return lsn, nil
}

// appendGrouped enqueues one record on the commit-waiter queue. The
// first arrival while no leader is running becomes the leader; later
// arrivals wait to be woken by the covering commit or promoted to lead
// the next batch when the previous leader retires.
func (l *Log) appendGrouped(payload []byte) (uint64, error) {
	req := &commitReq{payload: payload, done: make(chan struct{}), lead: make(chan struct{})}
	start := time.Now()
	l.gmu.Lock()
	l.gqueue = append(l.gqueue, req)
	elected := !l.gleader
	if elected {
		l.gleader = true
	}
	l.gmu.Unlock()
	if !elected {
		select {
		case <-req.done:
		case <-req.lead:
			elected = true
		}
	}
	if elected {
		l.leadCommit()
	}
	<-req.done
	l.commitWaitNs.ObserveSince(start)
	return req.lsn, req.err
}

// leadCommit drains the waiter queue, commits the batch (the caller's
// own record is in it), and then either promotes the first new waiter
// to lead the next round or retires leadership. Exactly one leader runs
// at a time; it never holds gmu across the commit I/O, which is what
// lets the queue refill while the fsync is in flight.
//
//cubelint:hotpath group-commit leader, once per ingest batch
func (l *Log) leadCommit() {
	if wait := l.opts.CommitWait; wait > 0 {
		time.Sleep(wait)
	}
	l.gmu.Lock()
	batch := l.gqueue
	l.gqueue = nil
	l.gmu.Unlock()

	l.mu.Lock()
	l.commitLocked(batch)
	l.mu.Unlock()
	for _, req := range batch {
		close(req.done)
	}

	l.gmu.Lock()
	if len(l.gqueue) == 0 {
		l.gleader = false
		l.gmu.Unlock()
		return
	}
	next := l.gqueue[0]
	l.gmu.Unlock()
	close(next.lead)
}

// commitLocked assigns dense LSNs to a batch of queued records, writes
// their frames with one buffered segment write per segment stretch, and
// issues a single policy sync for the whole group. A failed write fails
// every record whose frame did not reach the file and rolls the log
// position back to the last flushed record; a failed sync fails every
// record of the group (none was acknowledged durable). Callers hold
// l.mu and close each req's done channel afterwards.
func (l *Log) commitLocked(batch []*commitReq) {
	bufCap := 0
	for _, req := range batch {
		bufCap += len(req.payload) + frameHeader
	}
	var (
		writes  = make([]*commitReq, 0, len(batch)) // reqs whose frame is buffered or written
		flushed int                                 // prefix of writes already in the segment file
		buf     = make([]byte, 0, bufCap)
	)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if _, err := l.seg.Write(buf); err != nil {
			return fmt.Errorf("wal: group append: %w", err)
		}
		l.segSize += int64(len(buf))
		buf = buf[:0]
		flushed = len(writes)
		return nil
	}
	var werr error
	if l.crashed {
		werr = errCrashed
	}
	for _, req := range batch {
		if werr != nil {
			req.err = werr
			continue
		}
		if int64(len(req.payload)) > MaxRecordBytes {
			//cubelint:ignore hot-fmt oversized-record rejection is the cold abort path
			req.err = fmt.Errorf("wal: record of %d bytes exceeds the %d-byte bound", len(req.payload), int64(MaxRecordBytes))
			continue
		}
		lsn := l.lastLSN + 1
		if l.seg == nil || l.segSize+int64(len(buf)) >= l.opts.SegmentBytes {
			if werr = flush(); werr != nil {
				req.err = werr
				continue
			}
			if werr = l.rotateLocked(lsn); werr != nil {
				req.err = werr
				continue
			}
		}
		buf = append(buf, encodeFrame(lsn, req.payload)...)
		req.lsn = lsn
		l.lastLSN = lsn
		writes = append(writes, req)
	}
	if err := flush(); err != nil && werr == nil {
		werr = err
	}
	if werr != nil && flushed < len(writes) {
		// Frames past the last successful flush never reached the file:
		// fail their reqs and roll the position back over them.
		l.lastLSN = writes[flushed].lsn - 1
		for _, req := range writes[flushed:] {
			req.lsn, req.err = 0, werr
		}
		writes = writes[:flushed]
	}
	if len(writes) == 0 {
		return
	}
	if err := l.syncPolicyLocked(writes[len(writes)-1].lsn); err != nil {
		for _, req := range writes {
			req.err = err
		}
		return
	}
	l.groupSize.Observe(int64(len(writes)))
}

// AppendBatchAt durably logs a run of records at explicit consecutive
// LSNs with one buffered write and one policy sync — the multi-delta
// (DELTABATCH) lockstep path. Per-record idempotency matches AppendAt:
// records at or below the current LSN are skipped, the first gap fails
// the batch from that record on (the already-written prefix stays, and
// is synced). applied counts the records written this call.
func (l *Log) AppendBatchAt(recs []Record) (applied int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return 0, errCrashed
	}
	var (
		buf      []byte
		buffered int // records in buf, not yet written to the segment
	)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if _, werr := l.seg.Write(buf); werr != nil {
			return fmt.Errorf("wal: batch append: %w", werr)
		}
		l.segSize += int64(len(buf))
		buf = buf[:0]
		buffered = 0
		return nil
	}
	startLSN := l.lastLSN
	var batchErr error
	for _, rec := range recs {
		if rec.LSN <= l.lastLSN {
			continue // idempotent redelivery
		}
		if rec.LSN != l.lastLSN+1 {
			batchErr = fmt.Errorf("wal: append at lsn %d leaves a gap after %d", rec.LSN, l.lastLSN)
			break
		}
		if int64(len(rec.Payload)) > MaxRecordBytes {
			batchErr = fmt.Errorf("wal: record of %d bytes exceeds the %d-byte bound", len(rec.Payload), int64(MaxRecordBytes))
			break
		}
		if l.seg == nil || l.segSize+int64(len(buf)) >= l.opts.SegmentBytes {
			if batchErr = flush(); batchErr != nil {
				break
			}
			if batchErr = l.rotateLocked(rec.LSN); batchErr != nil {
				break
			}
		}
		buf = append(buf, encodeFrame(rec.LSN, rec.Payload)...)
		l.lastLSN = rec.LSN
		buffered++
		applied++
	}
	if ferr := flush(); ferr != nil {
		// The buffered tail never reached the file: the log position must
		// not claim records a restart cannot replay.
		l.lastLSN -= uint64(buffered)
		applied -= buffered
		if batchErr == nil {
			batchErr = ferr
		}
	}
	if l.lastLSN == startLSN {
		return 0, batchErr
	}
	if serr := l.syncPolicyLocked(l.lastLSN); serr != nil {
		return applied, serr
	}
	if applied > 0 {
		l.groupSize.Observe(int64(applied))
	}
	return applied, batchErr
}

// syncPolicyLocked issues the policy-appropriate sync covering every
// frame written so far — the batch-aware half of the old single-record
// append: one call per group instead of one per record. Callers hold
// l.mu.
func (l *Log) syncPolicyLocked(lsn uint64) error {
	switch l.opts.Fsync {
	case FsyncAlways:
		if err := l.seg.Sync(); err != nil {
			return fmt.Errorf("wal: fsync lsn %d: %w", lsn, err)
		}
		l.syncCount++
		return l.syncDirLocked()
	case FsyncInterval:
		if time.Since(l.lastSync) >= l.opts.FsyncEvery {
			if err := l.seg.Sync(); err != nil {
				return fmt.Errorf("wal: fsync lsn %d: %w", lsn, err)
			}
			l.syncCount++
			l.lastSync = time.Now()
			return l.syncDirLocked()
		}
	}
	return nil
}

// AppendAt writes one record at an explicit LSN — the catch-up path,
// where a recovering replica persists records fetched from a live peer.
// A record at or below the current LSN is a duplicate and is skipped
// (applied=false, no error); a gap is an error.
func (l *Log) AppendAt(lsn uint64, payload []byte) (applied bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn <= l.lastLSN {
		return false, nil
	}
	if lsn != l.lastLSN+1 {
		return false, fmt.Errorf("wal: append at lsn %d leaves a gap after %d", lsn, l.lastLSN)
	}
	if err := l.appendLocked(lsn, payload); err != nil {
		return false, err
	}
	return true, nil
}

// appendLocked writes and (per policy) syncs one frame, rotating first
// when the active segment is full. Callers hold l.mu.
func (l *Log) appendLocked(lsn uint64, payload []byte) error {
	if l.crashed {
		return errCrashed
	}
	if int64(len(payload)) > MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte bound", len(payload), int64(MaxRecordBytes))
	}
	if l.seg == nil || l.segSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(lsn); err != nil {
			return err
		}
	}
	frame := encodeFrame(lsn, payload)
	if _, err := l.seg.Write(frame); err != nil {
		return fmt.Errorf("wal: append lsn %d: %w", lsn, err)
	}
	l.segSize += int64(len(frame))
	l.lastLSN = lsn
	return l.syncPolicyLocked(lsn)
}

// rotateLocked closes the active segment and starts a new one whose
// first record will be lsn. Callers hold l.mu.
func (l *Log) rotateLocked(lsn uint64) error {
	if l.seg != nil {
		if err := l.seg.Sync(); err != nil {
			cerr := l.seg.Close()
			return errors.Join(fmt.Errorf("wal: syncing full segment: %w", err), cerr)
		}
		l.syncCount++
		if err := l.seg.Close(); err != nil {
			return fmt.Errorf("wal: closing full segment: %w", err)
		}
		l.seg = nil
	}
	path := filepath.Join(l.dir, segName(lsn))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [16]byte
	copy(hdr[:], segMagic)
	binary.LittleEndian.PutUint64(hdr[len(segMagic):], lsn)
	if _, err := f.Write(hdr[:segHeaderSize]); err != nil {
		cerr := f.Close()
		return errors.Join(fmt.Errorf("wal: writing segment header: %w", err), cerr)
	}
	l.seg = f
	l.segStart = lsn
	l.segSize = int64(segHeaderSize)
	// The new file's directory entry is not durable until the directory
	// itself is fsynced; the next data fsync flushes it (see
	// syncDirLocked), so an acknowledged record can never outlive its
	// segment's directory entry.
	l.dirDirty = true
	if l.firstLSN > lsn {
		l.firstLSN = lsn
	}
	return nil
}

// syncDir fsyncs a directory so just-created (or just-removed) entries
// survive power loss, mirroring recovery's checkpoint publication.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return errors.Join(fmt.Errorf("wal: syncing directory %s: %w", dir, serr), cerr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: closing directory %s: %w", dir, cerr)
	}
	return nil
}

// syncDirLocked flushes the log directory if a segment was created since
// the last directory sync. Called right after a successful data fsync:
// without it, power loss can drop a fully synced segment's directory
// entry, silently losing acknowledged records (or failing the next Open
// on LSN contiguity). Callers hold l.mu.
func (l *Log) syncDirLocked() error {
	if !l.dirDirty {
		return nil
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.dirDirty = false
	return nil
}

// Sync forces buffered appends to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seg == nil || l.crashed {
		return nil
	}
	if err := l.seg.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.syncCount++
	l.lastSync = time.Now()
	return l.syncDirLocked()
}

// Replay streams every retained record with LSN > after, in order. The
// payload slice passed to fn is only valid during the call. Replaying
// from below the retained floor returns ErrTrimmed: those records are
// gone and a checkpoint must cover them.
func (l *Log) Replay(after uint64, fn func(rec Record) error) error {
	l.mu.Lock()
	if l.crashed {
		l.mu.Unlock()
		return errCrashed
	}
	first, last := l.firstLSN, l.lastLSN
	dir := l.dir
	l.mu.Unlock()
	if after+1 < first {
		return fmt.Errorf("%w: need records after %d, floor is %d", ErrTrimmed, after, first)
	}
	if after >= last {
		return nil
	}
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for i, start := range segs {
		// Skip segments entirely at or below the replay point.
		if i+1 < len(segs) && segs[i+1] <= after+1 {
			continue
		}
		f, err := os.Open(filepath.Join(dir, segName(start)))
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		data, err := io.ReadAll(f)
		cerr := f.Close()
		if err != nil {
			return errors.Join(fmt.Errorf("wal: %w", err), cerr)
		}
		if cerr != nil {
			return cerr
		}
		if len(data) < segHeaderSize {
			continue
		}
		off := segHeaderSize
		want := start
		for {
			rec, n, ok := decodeFrame(data[off:], want)
			if !ok {
				break
			}
			off += n
			want = rec.LSN + 1
			if rec.LSN <= after {
				continue
			}
			if rec.LSN > last {
				return nil
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// TrimBelow deletes whole segments every record of which has LSN <= lsn.
// The active segment is never deleted. Trimming is how checkpoints bound
// the log: records at or below the checkpoint's high-water mark are
// re-derivable from the checkpoint and need not replay.
func (l *Log) TrimBelow(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return errCrashed
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for i, start := range segs {
		// A segment's records end where the next segment starts.
		if start == l.segStart || i == len(segs)-1 {
			break
		}
		if segs[i+1]-1 > lsn {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, segName(start))); err != nil {
			return fmt.Errorf("wal: trim: %w", err)
		}
		l.firstLSN = segs[i+1]
	}
	return nil
}

// TruncateTail durably discards every record with LSN above lsn — the
// inverse of TrimBelow: trimming drops a checkpoint-covered prefix,
// truncation drops an unwanted tail. It is the repair path for a replica
// whose newest record was never acknowledged by its coordinator (or
// diverged from its group after a lost-ack round): the record is removed
// so peer catch-up can resupply the group's true history. Truncating
// below the retained floor is an error.
func (l *Log) TruncateTail(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return errCrashed
	}
	if lsn >= l.lastLSN {
		return nil
	}
	if lsn+1 < l.firstLSN {
		return fmt.Errorf("wal: truncate to lsn %d below retained floor %d", lsn, l.firstLSN)
	}
	if l.seg != nil {
		if err := l.seg.Close(); err != nil {
			return fmt.Errorf("wal: truncate: closing active segment: %w", err)
		}
		l.seg = nil
		l.segStart, l.segSize = 0, 0
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	keep := uint64(0) // first LSN of the segment holding the new tail record
	for _, start := range segs {
		if start <= lsn {
			keep = start
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, segName(start))); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
	}
	// The removals must be durable before the caller builds on them: a
	// deleted tail segment resurrected by power loss would bring a
	// discarded (possibly divergent) record back into the log.
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.dirDirty = false
	if keep == 0 {
		// Every retained record was above lsn: the log is empty but stays
		// positioned — the next append starts a segment at lsn+1.
		l.lastLSN, l.firstLSN = lsn, lsn+1
		return nil
	}
	path := filepath.Join(l.dir, segName(keep))
	end, err := offsetOfRecord(path, keep, lsn)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Truncate(end); err != nil {
		cerr := f.Close()
		return errors.Join(fmt.Errorf("wal: truncating %s: %w", path, err), cerr)
	}
	if err := f.Sync(); err != nil {
		cerr := f.Close()
		return errors.Join(fmt.Errorf("wal: truncate sync: %w", err), cerr)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		cerr := f.Close()
		return errors.Join(fmt.Errorf("wal: %w", err), cerr)
	}
	l.seg = f
	l.segStart = keep
	l.segSize = end
	l.lastLSN = lsn
	return nil
}

// offsetOfRecord scans a segment starting at LSN start and returns the
// byte offset just past record lsn.
func offsetOfRecord(path string, start, lsn uint64) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	data, err := io.ReadAll(f)
	cerr := f.Close()
	if err != nil {
		return 0, errors.Join(fmt.Errorf("wal: reading %s: %w", path, err), cerr)
	}
	if cerr != nil {
		return 0, cerr
	}
	if len(data) < segHeaderSize {
		return 0, fmt.Errorf("wal: %s: bad segment header", path)
	}
	off := int64(segHeaderSize)
	want := start
	for {
		rec, n, ok := decodeFrame(data[off:], want)
		if !ok {
			return 0, fmt.Errorf("wal: %s: record %d not found for truncation", path, lsn)
		}
		off += int64(n)
		if rec.LSN == lsn {
			return off, nil
		}
		want = rec.LSN + 1
	}
}

// Reset durably discards the entire retained log and repositions it at
// lsn: the next append gets lsn+1, and replaying after lsn yields
// nothing. Recovery uses it when a checkpoint is ahead of every durable
// log record (power loss under FsyncInterval/FsyncNever — checkpoints
// are always fsynced, log records may not be): the retained records are
// all baked into the checkpoint, and appending at the stale log position
// would reuse LSNs the restored state already contains. lsn must be at
// or above LastLSN.
func (l *Log) Reset(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return errCrashed
	}
	if lsn < l.lastLSN {
		return fmt.Errorf("wal: reset to lsn %d behind last lsn %d", lsn, l.lastLSN)
	}
	if l.seg != nil {
		if err := l.seg.Close(); err != nil {
			return fmt.Errorf("wal: reset: closing active segment: %w", err)
		}
		l.seg = nil
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, start := range segs {
		if err := os.Remove(filepath.Join(l.dir, segName(start))); err != nil {
			return fmt.Errorf("wal: reset: %w", err)
		}
	}
	// Durable removals: a resurrected old segment would sit below the new
	// position as a non-contiguous prefix and fail the next Open.
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.dirDirty = false
	l.segStart, l.segSize = 0, 0
	l.lastLSN, l.firstLSN = lsn, lsn+1
	return nil
}

// Close syncs and closes the active segment. The sync error, if any, is
// the caller's last chance to learn buffered records never hit disk.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seg == nil || l.crashed {
		return nil
	}
	var errs []error
	if err := l.seg.Sync(); err != nil {
		errs = append(errs, fmt.Errorf("wal: close sync: %w", err))
	} else {
		l.syncCount++
		if err := l.syncDirLocked(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := l.seg.Close(); err != nil {
		errs = append(errs, fmt.Errorf("wal: close: %w", err))
	}
	l.seg = nil
	return errors.Join(errs...)
}

// Crash abandons the log without syncing — the in-process stand-in for
// kill -9 in crash tests. Whatever the OS already holds stays on disk;
// nothing more is flushed, and the Log refuses further use.
func (l *Log) Crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seg != nil {
		_ = l.seg.Close() // no sync on purpose; the error is part of the crash
		l.seg = nil
	}
	l.crashed = true
}
