package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// collect replays everything after `after` into a slice.
func collect(t *testing.T, l *Log, after uint64) []Record {
	t.Helper()
	var recs []Record
	err := l.Replay(after, func(r Record) error {
		recs = append(recs, Record{LSN: r.LSN, Payload: append([]byte(nil), r.Payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay after %d: %v", after, err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("delta-%03d", i))
		want = append(want, p)
		lsn, err := l.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("append %d assigned lsn %d", i, lsn)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastLSN(); got != 20 {
		t.Fatalf("LastLSN = %d, want 20", got)
	}
	recs := collect(t, l2, 0)
	if len(recs) != 20 {
		t.Fatalf("replayed %d records, want 20", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || !bytes.Equal(r.Payload, want[i]) {
			t.Fatalf("record %d = {%d %q}, want {%d %q}", i, r.LSN, r.Payload, i+1, want[i])
		}
	}
	// Partial replay.
	tail := collect(t, l2, 15)
	if len(tail) != 5 || tail[0].LSN != 16 {
		t.Fatalf("replay after 15: got %d records starting at %d", len(tail), tail[0].LSN)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 64)
	for i := 0; i < 30; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := len(collect(t, l2, 0)); got != 30 {
		t.Fatalf("replayed %d records across segments, want 30", got)
	}
}

func TestAppendAtIdempotence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	// Duplicate: skipped without error.
	applied, err := l.AppendAt(1, []byte("a"))
	if err != nil || applied {
		t.Fatalf("AppendAt(1) = %v, %v; want skipped", applied, err)
	}
	// Next in sequence: applied.
	applied, err = l.AppendAt(2, []byte("b"))
	if err != nil || !applied {
		t.Fatalf("AppendAt(2) = %v, %v; want applied", applied, err)
	}
	// Gap: error.
	if _, err := l.AppendAt(5, []byte("e")); err == nil {
		t.Fatal("AppendAt(5) after lsn 2 should fail with a gap error")
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Cut the single segment mid-way through the last record.
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segName(segs[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	if got := l2.LastLSN(); got != 4 {
		t.Fatalf("LastLSN after torn tail = %d, want 4", got)
	}
	// The log must keep appending at the truncation point.
	lsn, err := l2.Append([]byte("rec-4-retry"))
	if err != nil || lsn != 5 {
		t.Fatalf("append after torn tail = %d, %v; want 5", lsn, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	recs := collect(t, l3, 0)
	if len(recs) != 5 || string(recs[4].Payload) != "rec-4-retry" {
		t.Fatalf("after torn-tail repair: %d records, last %q", len(recs), recs[len(recs)-1].Payload)
	}
}

func TestInteriorCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("y"), 48)
	for i := 0; i < 10; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("need >= 2 segments, have %d (%v)", len(segs), err)
	}
	// Flip a payload byte in the FIRST segment: acknowledged interior
	// records are damaged, so Open must refuse rather than silently
	// dropping them.
	path := filepath.Join(dir, segName(segs[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderSize+frameHeader+4] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open must fail on interior corruption")
	}
}

func TestTrimBelow(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte("z"), 48)
	for i := 0; i < 12; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := listSegments(dir)
	if len(before) < 3 {
		t.Fatalf("need >= 3 segments, have %d", len(before))
	}
	if err := l.TrimBelow(l.LastLSN()); err != nil {
		t.Fatal(err)
	}
	after, _ := listSegments(dir)
	if len(after) >= len(before) {
		t.Fatalf("trim removed nothing: %d -> %d segments", len(before), len(after))
	}
	// Replay from 0 must now report the trim instead of silence.
	err = l.Replay(0, func(Record) error { return nil })
	if !errors.Is(err, ErrTrimmed) {
		t.Fatalf("replay below floor: %v, want ErrTrimmed", err)
	}
	// Replay from the floor onward still works.
	floor := l.FirstLSN()
	var n int
	if err := l.Replay(floor-1, func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if want := int(l.LastLSN() - floor + 1); n != want {
		t.Fatalf("replayed %d records from floor, want %d", n, want)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		name   string
		opts   Options
		verify func(t *testing.T, l *Log)
	}{
		{"always", Options{Fsync: FsyncAlways}, func(t *testing.T, l *Log) {
			if l.Syncs() < 8 {
				t.Fatalf("FsyncAlways issued %d syncs for 8 appends", l.Syncs())
			}
		}},
		{"interval", Options{Fsync: FsyncInterval, FsyncEvery: time.Hour}, func(t *testing.T, l *Log) {
			if l.Syncs() > 1 {
				t.Fatalf("FsyncInterval(1h) issued %d syncs for 8 appends", l.Syncs())
			}
		}},
		{"never", Options{Fsync: FsyncNever}, func(t *testing.T, l *Log) {
			if l.Syncs() != 0 {
				t.Fatalf("FsyncNever issued %d syncs before close", l.Syncs())
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l, err := Open(t.TempDir(), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				if _, err := l.Append([]byte("p")); err != nil {
					t.Fatal(err)
				}
			}
			tc.verify(t, l)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever, "ALWAYS": FsyncAlways,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy must reject unknown names")
	}
}

func TestCrashAbandonsLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("acked")); err != nil {
		t.Fatal(err)
	}
	l.Crash()
	if _, err := l.Append([]byte("after")); err == nil {
		t.Fatal("append after Crash must fail")
	}
	// The acked record (FsyncAlways) survives the crash.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastLSN(); got != 1 {
		t.Fatalf("acked record lost across crash: LastLSN = %d", got)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("oversize record must be rejected")
	}
}

// TestTornHeaderSegmentRecovered covers the crash window between segment
// creation and the header becoming durable: a zero-length or short-header
// last segment holds no durable record (the header precedes every frame),
// so Open must drop it and recover instead of failing forever.
func TestTornHeaderSegmentRecovered(t *testing.T) {
	t.Run("empty only segment", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("open with empty segment: %v", err)
		}
		defer l.Close()
		if got := l.LastLSN(); got != 0 {
			t.Fatalf("LastLSN = %d, want 0", got)
		}
		if lsn, err := l.Append([]byte("first")); err != nil || lsn != 1 {
			t.Fatalf("append after recovery = %d, %v; want 1", lsn, err)
		}
	})

	t.Run("short header keeps name position", func(t *testing.T) {
		dir := t.TempDir()
		// A torn segment named for first LSN 5: the log was trimmed/rotated
		// past 1..4, so recovery must keep the position, not rewind to 0.
		if err := os.WriteFile(filepath.Join(dir, segName(5)), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("open with short header: %v", err)
		}
		defer l.Close()
		if got := l.LastLSN(); got != 4 {
			t.Fatalf("LastLSN = %d, want 4", got)
		}
		if lsn, err := l.Append([]byte("resume")); err != nil || lsn != 5 {
			t.Fatalf("append after recovery = %d, %v; want 5", lsn, err)
		}
	})

	t.Run("torn last segment after valid ones", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		torn := filepath.Join(dir, segName(6))
		if err := os.WriteFile(torn, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("open with torn last segment: %v", err)
		}
		defer l2.Close()
		if got := l2.LastLSN(); got != 5 {
			t.Fatalf("LastLSN = %d, want 5", got)
		}
		if recs := collect(t, l2, 0); len(recs) != 5 {
			t.Fatalf("replayed %d records, want 5", len(recs))
		}
		if _, err := os.Stat(torn); !os.IsNotExist(err) {
			t.Fatalf("torn segment not removed: %v", err)
		}
		if lsn, err := l2.Append([]byte("rec-5")); err != nil || lsn != 6 {
			t.Fatalf("append after recovery = %d, %v; want 6", lsn, err)
		}
	})

	t.Run("interior torn header still fails", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Open(dir, Options{SegmentBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, err := listSegments(dir)
		if err != nil || len(segs) < 2 {
			t.Fatalf("need >= 2 segments, have %d (%v)", len(segs), err)
		}
		// Zeroing a NON-last segment's header damages acknowledged interior
		// records; Open must refuse rather than silently dropping them.
		if err := os.WriteFile(filepath.Join(dir, segName(segs[0])), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); err == nil {
			t.Fatal("open must fail on an interior torn header")
		}
	})
}

func TestTruncateTail(t *testing.T) {
	t.Run("mid segment", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 10; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.TruncateTail(7); err != nil {
			t.Fatal(err)
		}
		if got := l.LastLSN(); got != 7 {
			t.Fatalf("LastLSN = %d, want 7", got)
		}
		if recs := collect(t, l, 0); len(recs) != 7 || string(recs[6].Payload) != "rec-7" {
			t.Fatalf("after truncation: %d records", len(recs))
		}
		// The vacated positions are reusable with fresh content.
		if lsn, err := l.Append([]byte("rec-8b")); err != nil || lsn != 8 {
			t.Fatalf("append after truncation = %d, %v; want 8", lsn, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		recs := collect(t, l2, 0)
		if len(recs) != 8 || string(recs[7].Payload) != "rec-8b" {
			t.Fatalf("reopen after truncation: %d records, last %q", len(recs), recs[len(recs)-1].Payload)
		}
	})

	t.Run("whole segments dropped", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Open(dir, Options{SegmentBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 6; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.TruncateTail(3); err != nil {
			t.Fatal(err)
		}
		if got := l.LastLSN(); got != 3 {
			t.Fatalf("LastLSN = %d, want 3", got)
		}
		segs, err := listSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, start := range segs {
			if start > 3 {
				t.Fatalf("segment %d survived truncation to 3", start)
			}
		}
		if err := l.TruncateTail(9); err != nil {
			t.Fatalf("no-op truncation: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("below retained floor", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Open(dir, Options{SegmentBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		for i := 1; i <= 8; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.TrimBelow(5); err != nil {
			t.Fatal(err)
		}
		if err := l.TruncateTail(2); err == nil {
			t.Fatal("truncation below the retained floor must fail")
		}
	})
}

func TestReset(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 4; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(2); err == nil {
		t.Fatal("reset behind the last LSN must fail")
	}
	if err := l.Reset(10); err != nil {
		t.Fatal(err)
	}
	if got := l.LastLSN(); got != 10 {
		t.Fatalf("LastLSN after reset = %d, want 10", got)
	}
	if segs, err := listSegments(dir); err != nil || len(segs) != 0 {
		t.Fatalf("segments after reset: %v (%v)", segs, err)
	}
	if err := l.Replay(0, func(Record) error { return nil }); !errors.Is(err, ErrTrimmed) {
		t.Fatalf("replay from 0 after reset = %v, want ErrTrimmed", err)
	}
	if lsn, err := l.Append([]byte("resumed")); err != nil || lsn != 11 {
		t.Fatalf("append after reset = %d, %v; want 11", lsn, err)
	}
	recs := collect(t, l, 10)
	if len(recs) != 1 || recs[0].LSN != 11 {
		t.Fatalf("replay after reset: %+v", recs)
	}
}
