// Package workload generates the synthetic sparse datasets the experiments
// run on. The paper's inputs are multidimensional arrays characterized by
// shape and sparsity (the fraction of cells holding a non-zero value),
// stored in the chunk-offset compressed format; generators here reproduce
// that with fixed seeds, plus a clustered variant for skewed data.
package workload

import (
	"fmt"
	"math/rand"

	"parcube/internal/array"
	"parcube/internal/nd"
)

// Distribution selects how non-zero cells are placed.
type Distribution int

const (
	// Uniform scatters non-zero cells uniformly over the array.
	Uniform Distribution = iota
	// Clustered concentrates non-zero cells around a few Zipf-weighted
	// regions, modeling real fact tables where some item/branch/time
	// combinations dominate.
	Clustered
)

// String names the distribution.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Clustered:
		return "clustered"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// Spec describes a synthetic dataset.
type Spec struct {
	// Shape is the array's dimension sizes.
	Shape nd.Shape
	// SparsityPercent is the percentage of cells holding a non-zero value,
	// e.g. 25 for the paper's densest setting.
	SparsityPercent float64
	// Seed makes generation reproducible.
	Seed int64
	// Distribution defaults to Uniform.
	Distribution Distribution
	// MaxValue bounds cell values (uniform integers in [1, MaxValue]);
	// defaults to 10.
	MaxValue int
}

// Generate materializes the dataset described by the spec. The number of
// stored cells is exactly round(sparsity * size): cells are distinct.
func Generate(spec Spec) (*array.Sparse, error) {
	if spec.Shape.Rank() == 0 {
		return nil, fmt.Errorf("workload: empty shape")
	}
	if spec.SparsityPercent <= 0 || spec.SparsityPercent > 100 {
		return nil, fmt.Errorf("workload: sparsity %.2f%% outside (0, 100]", spec.SparsityPercent)
	}
	size := spec.Shape.Size()
	nnz := int(float64(size)*spec.SparsityPercent/100 + 0.5)
	if nnz < 1 {
		nnz = 1
	}
	maxVal := spec.MaxValue
	if maxVal <= 0 {
		maxVal = 10
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	builder, err := array.NewSparseBuilder(spec.Shape, nil)
	if err != nil {
		return nil, err
	}
	coords := make([]int, spec.Shape.Rank())
	taken := make(map[int]struct{}, nnz)
	sample := func() int {
		switch spec.Distribution {
		case Clustered:
			return clusteredOffset(rng, spec.Shape, coords)
		default:
			for d := range coords {
				coords[d] = rng.Intn(spec.Shape[d])
			}
			return spec.Shape.Offset(coords)
		}
	}
	for len(taken) < nnz {
		off := sample()
		if _, dup := taken[off]; dup {
			continue
		}
		taken[off] = struct{}{}
		spec.Shape.Coords(off, coords)
		if err := builder.Add(coords, float64(rng.Intn(maxVal)+1)); err != nil {
			return nil, err
		}
	}
	return builder.Build(), nil
}

// clusteredOffset samples a cell near one of a handful of Zipf-weighted
// centers: a center is chosen per dimension from a small set, then the
// coordinate is a bounded geometric excursion from it.
func clusteredOffset(rng *rand.Rand, shape nd.Shape, coords []int) int {
	const centers = 8
	zipf := rand.NewZipf(rng, 1.3, 1, centers-1)
	for d := range coords {
		c := int(zipf.Uint64()) * shape[d] / centers
		// Geometric excursion with mean ~ extent/16.
		step := shape[d]/16 + 1
		off := c + rng.Intn(2*step+1) - step
		if off < 0 {
			off = 0
		}
		if off >= shape[d] {
			off = shape[d] - 1
		}
		coords[d] = off
	}
	return shape.Offset(coords)
}

// PaperSparsities are the three sparsity levels of Figures 7-9 (percent).
var PaperSparsities = []float64{25, 10, 5}

// Fig7Shape returns the Figure 7 dataset shape: 64^4 at full (paper) scale,
// 24^4 at test scale.
func Fig7Shape(full bool) nd.Shape {
	if full {
		return nd.MustShape(64, 64, 64, 64)
	}
	return nd.MustShape(24, 24, 24, 24)
}

// Fig8Shape returns the Figure 8/9 dataset shape: 128^4 at full scale,
// 32^4 at test scale.
func Fig8Shape(full bool) nd.Shape {
	if full {
		return nd.MustShape(128, 128, 128, 128)
	}
	return nd.MustShape(32, 32, 32, 32)
}
