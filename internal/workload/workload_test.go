package workload

import (
	"testing"

	"parcube/internal/nd"
)

func TestGenerateExactSparsity(t *testing.T) {
	spec := Spec{Shape: nd.MustShape(20, 20, 10), SparsityPercent: 10, Seed: 1}
	s, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.NNZ() != 400 { // 10% of 4000
		t.Fatalf("NNZ = %d", s.NNZ())
	}
	s.Iter(func(_ []int, v float64) {
		if v < 1 || v > 10 {
			t.Fatalf("value %v outside [1,10]", v)
		}
	})
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Shape: nd.MustShape(16, 16), SparsityPercent: 25, Seed: 7}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !a.ToDense().Equal(b.ToDense()) {
		t.Fatal("same seed, different data")
	}
	spec.Seed = 8
	c, _ := Generate(spec)
	if a.ToDense().Equal(c.ToDense()) {
		t.Fatal("different seeds, same data")
	}
}

func TestGenerateClustered(t *testing.T) {
	spec := Spec{
		Shape:           nd.MustShape(64, 64),
		SparsityPercent: 5,
		Seed:            3,
		Distribution:    Clustered,
	}
	s, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.NNZ() != 205 { // 5% of 4096, rounded
		t.Fatalf("NNZ = %d", s.NNZ())
	}
	// Clustering concentrates mass: the busiest 8x8 chunk should hold far
	// more than the uniform expectation (205/64 ~ 3.2 per chunk).
	counts := make(map[[2]int]int)
	s.Iter(func(c []int, _ float64) {
		counts[[2]int{c[0] / 8, c[1] / 8}]++
	})
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < 10 {
		t.Fatalf("busiest chunk holds only %d cells; clustering ineffective", max)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{Shape: nd.Shape{}, SparsityPercent: 10}); err == nil {
		t.Fatal("empty shape accepted")
	}
	if _, err := Generate(Spec{Shape: nd.MustShape(4), SparsityPercent: 0}); err == nil {
		t.Fatal("zero sparsity accepted")
	}
	if _, err := Generate(Spec{Shape: nd.MustShape(4), SparsityPercent: 101}); err == nil {
		t.Fatal("over-dense accepted")
	}
}

func TestGenerateFullDensity(t *testing.T) {
	s, err := Generate(Spec{Shape: nd.MustShape(5, 5), SparsityPercent: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.NNZ() != 25 {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
}

func TestPaperShapes(t *testing.T) {
	if !Fig7Shape(true).Equal(nd.MustShape(64, 64, 64, 64)) {
		t.Fatal("fig7 full shape wrong")
	}
	if Fig7Shape(false).Size() >= Fig7Shape(true).Size() {
		t.Fatal("fig7 test scale not smaller")
	}
	if !Fig8Shape(true).Equal(nd.MustShape(128, 128, 128, 128)) {
		t.Fatal("fig8 full shape wrong")
	}
	if len(PaperSparsities) != 3 || PaperSparsities[0] != 25 {
		t.Fatal("paper sparsities wrong")
	}
}

func TestDistributionString(t *testing.T) {
	if Uniform.String() != "uniform" || Clustered.String() != "clustered" {
		t.Fatal("distribution names wrong")
	}
	if Distribution(9).String() == "" {
		t.Fatal("unknown distribution name empty")
	}
}
