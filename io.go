package parcube

import (
	"fmt"
	"io"

	"parcube/internal/cubeio"
	"parcube/internal/nd"
)

// Range selects [Lo, Hi) along one dimension in a Dice call.
type Range struct {
	Lo, Hi int
}

// Dice restricts the table to coordinate ranges — the OLAP dice operation.
// Dimensions absent from ranges keep their full extent. Coordinates of the
// result are re-based to each range's Lo.
func (t *Table) Dice(ranges map[string]Range) (*Table, error) {
	rank := len(t.names)
	lo := make([]int, rank)
	hi := make([]int, rank)
	shape := t.data.Shape()
	copy(hi, shape)
	for name, r := range ranges {
		axis, err := t.axisOf(name)
		if err != nil {
			return nil, err
		}
		if r.Lo < 0 || r.Hi > shape[axis] || r.Lo >= r.Hi {
			return nil, fmt.Errorf("parcube: range [%d,%d) invalid for %q (extent %d)", r.Lo, r.Hi, name, shape[axis])
		}
		lo[axis], hi[axis] = r.Lo, r.Hi
	}
	return &Table{
		names:       append([]string(nil), t.names...),
		schemaNames: t.schemaNames,
		mask:        t.mask,
		data:        t.data.Crop(lo, hi),
		op:          t.op,
	}, nil
}

// RangeTotal aggregates the table over coordinate ranges in one call —
// "sales of items 10..19 during weeks 0..3". Dimensions absent from ranges
// aggregate over their full extent.
func (t *Table) RangeTotal(ranges map[string]Range) (float64, error) {
	diced, err := t.Dice(ranges)
	if err != nil {
		return 0, err
	}
	total := t.op.Identity()
	for _, v := range diced.data.Data() {
		total = t.op.Combine(total, v)
	}
	return total, nil
}

// ReadDatasetCSV loads a fact table written by WriteCSV (or cubegen): a
// header naming the dimensions plus "value", then coordinate rows. The
// header names must match the schema.
func ReadDatasetCSV(r io.Reader, schema *Schema) (*Dataset, error) {
	shape, err := nd.NewShape(schema.Sizes()...)
	if err != nil {
		return nil, err
	}
	sparse, names, err := cubeio.ReadCSV(r, shape)
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		if name != schema.names[i] {
			return nil, fmt.Errorf("parcube: CSV column %d is %q, schema has %q", i, name, schema.names[i])
		}
	}
	ds := NewDataset(schema)
	var addErr error
	sparse.Iter(func(coords []int, v float64) {
		if addErr == nil {
			addErr = ds.Add(v, coords...)
		}
	})
	if addErr != nil {
		return nil, addErr
	}
	return ds, nil
}

// WriteDatasetCSV writes the dataset's distinct cells as a fact table.
// It freezes the dataset.
func WriteDatasetCSV(w io.Writer, d *Dataset) error {
	return cubeio.WriteCSV(w, d.schema.Names(), d.freeze())
}

// ReadCubeSnapshot loads a cube previously serialized with WriteSnapshot.
// Snapshots do not carry the aggregator, so the caller restates it (it
// only affects further Rollup/RangeTotal semantics). The loaded cube
// answers every proper group-by; the full-dimensional group-by needs the
// original dataset and is not available from a snapshot.
func ReadCubeSnapshot(r io.Reader, schema *Schema, aggregator Aggregator) (*Cube, error) {
	if !aggregator.op().Valid() {
		return nil, fmt.Errorf("parcube: invalid aggregator %d", int(aggregator))
	}
	store, err := cubeio.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	// Validate shapes against the schema.
	shape, err := nd.NewShape(schema.Sizes()...)
	if err != nil {
		return nil, err
	}
	for _, mask := range store.Masks() {
		a, _ := store.Get(mask)
		want := shape.Keep(mask.Dims())
		if !a.Shape().Equal(want) {
			return nil, fmt.Errorf("parcube: snapshot group-by %b has shape %v, schema implies %v",
				mask, a.Shape(), want)
		}
	}
	if store.Len() != (1<<uint(schema.Dims()))-1 {
		return nil, fmt.Errorf("parcube: snapshot has %d group-bys, schema implies %d",
			store.Len(), (1<<uint(schema.Dims()))-1)
	}
	return &Cube{schema: schema, store: store, input: nil, op: aggregator.op()}, nil
}

// SaveDir persists the cube's group-bys to a directory (one binary file
// per group-by plus a manifest). The dataset itself is not stored; save it
// separately with WriteDatasetCSV if full-dimensional queries must survive
// the round trip.
func (c *Cube) SaveDir(dir string) error {
	store, err := cubeio.NewDirStore(dir, c.schema.Names())
	if err != nil {
		return err
	}
	for _, mask := range c.store.Masks() {
		a, _ := c.store.Get(mask)
		if err := store.WriteBack(mask, a); err != nil {
			return err
		}
	}
	return store.Flush()
}

// LoadCubeDir opens a cube previously saved with SaveDir. Like snapshot
// loading, the result answers every proper group-by; the full-dimensional
// group-by needs the original dataset.
func LoadCubeDir(dir string, schema *Schema, aggregator Aggregator) (*Cube, error) {
	if !aggregator.op().Valid() {
		return nil, fmt.Errorf("parcube: invalid aggregator %d", int(aggregator))
	}
	ds, err := cubeio.OpenDirStore(dir)
	if err != nil {
		return nil, err
	}
	store, err := ds.ToStore()
	if err != nil {
		return nil, err
	}
	shape, err := nd.NewShape(schema.Sizes()...)
	if err != nil {
		return nil, err
	}
	for _, mask := range store.Masks() {
		a, _ := store.Get(mask)
		want := shape.Keep(mask.Dims())
		if !a.Shape().Equal(want) {
			return nil, fmt.Errorf("parcube: stored group-by %b has shape %v, schema implies %v", mask, a.Shape(), want)
		}
	}
	if store.Len() != (1<<uint(schema.Dims()))-1 {
		return nil, fmt.Errorf("parcube: directory has %d group-bys, schema implies %d",
			store.Len(), (1<<uint(schema.Dims()))-1)
	}
	return &Cube{schema: schema, store: store, input: nil, op: aggregator.op()}, nil
}
