package parcube

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"parcube/internal/array"
	"parcube/internal/cubeio"
	"parcube/internal/nd"
	"parcube/internal/seq"
)

// Range selects [Lo, Hi) along one dimension in a Dice call.
type Range struct {
	Lo, Hi int
}

// Dice restricts the table to coordinate ranges — the OLAP dice operation.
// Dimensions absent from ranges keep their full extent. Coordinates of the
// result are re-based to each range's Lo.
func (t *Table) Dice(ranges map[string]Range) (*Table, error) {
	rank := len(t.names)
	lo := make([]int, rank)
	hi := make([]int, rank)
	shape := t.data.Shape()
	copy(hi, shape)
	for name, r := range ranges {
		axis, err := t.axisOf(name)
		if err != nil {
			return nil, err
		}
		if r.Lo < 0 || r.Hi > shape[axis] || r.Lo >= r.Hi {
			return nil, fmt.Errorf("parcube: range [%d,%d) invalid for %q (extent %d)", r.Lo, r.Hi, name, shape[axis])
		}
		lo[axis], hi[axis] = r.Lo, r.Hi
	}
	return &Table{
		names:       append([]string(nil), t.names...),
		schemaNames: t.schemaNames,
		mask:        t.mask,
		data:        t.data.Crop(lo, hi),
		op:          t.op,
	}, nil
}

// RangeTotal aggregates the table over coordinate ranges in one call —
// "sales of items 10..19 during weeks 0..3". Dimensions absent from ranges
// aggregate over their full extent.
func (t *Table) RangeTotal(ranges map[string]Range) (float64, error) {
	diced, err := t.Dice(ranges)
	if err != nil {
		return 0, err
	}
	total := t.op.Identity()
	for _, v := range diced.data.Data() {
		total = t.op.Combine(total, v)
	}
	return total, nil
}

// ReadDatasetCSV loads a fact table written by WriteCSV (or cubegen): a
// header naming the dimensions plus "value", then coordinate rows. The
// header names must match the schema.
func ReadDatasetCSV(r io.Reader, schema *Schema) (*Dataset, error) {
	shape, err := nd.NewShape(schema.Sizes()...)
	if err != nil {
		return nil, err
	}
	sparse, names, err := cubeio.ReadCSV(r, shape)
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		if name != schema.names[i] {
			return nil, fmt.Errorf("parcube: CSV column %d is %q, schema has %q", i, name, schema.names[i])
		}
	}
	ds := NewDataset(schema)
	var addErr error
	sparse.Iter(func(coords []int, v float64) {
		if addErr == nil {
			addErr = ds.Add(v, coords...)
		}
	})
	if addErr != nil {
		return nil, addErr
	}
	return ds, nil
}

// WriteDatasetCSV writes the dataset's distinct cells as a fact table.
// It freezes the dataset.
func WriteDatasetCSV(w io.Writer, d *Dataset) error {
	return cubeio.WriteCSV(w, d.schema.Names(), d.freeze())
}

// ReadCubeSnapshot loads a cube previously serialized with WriteSnapshot.
// Snapshots do not carry the aggregator, so the caller restates it (it
// only affects further Rollup/RangeTotal semantics). The loaded cube
// answers every proper group-by; the full-dimensional group-by needs the
// original dataset and is not available from a snapshot.
func ReadCubeSnapshot(r io.Reader, schema *Schema, aggregator Aggregator) (*Cube, error) {
	if !aggregator.op().Valid() {
		return nil, fmt.Errorf("parcube: invalid aggregator %d", int(aggregator))
	}
	store, err := cubeio.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	// Validate shapes against the schema.
	shape, err := nd.NewShape(schema.Sizes()...)
	if err != nil {
		return nil, err
	}
	for _, mask := range store.Masks() {
		a, _ := store.Get(mask)
		want := shape.Keep(mask.Dims())
		if !a.Shape().Equal(want) {
			return nil, fmt.Errorf("parcube: snapshot group-by %b has shape %v, schema implies %v",
				mask, a.Shape(), want)
		}
	}
	if store.Len() != (1<<uint(schema.Dims()))-1 {
		return nil, fmt.Errorf("parcube: snapshot has %d group-bys, schema implies %d",
			store.Len(), (1<<uint(schema.Dims()))-1)
	}
	return &Cube{schema: schema, store: store, input: nil, op: aggregator.op()}, nil
}

// Cube state format (little endian):
//
//	magic    [8]byte "PCSTATE1"
//	snapLen  uint64  length of the snapshot section
//	snapshot snapLen bytes (cubeio snapshot of every group-by, CRC-footed)
//	hasInput uint8   1 when the merged fact table follows
//	inLen    uint64  length of the sparse section (when hasInput == 1)
//	input    inLen bytes (cubeio chunked sparse binary)
//
// Unlike a bare snapshot, cube state carries the merged fact table, so a
// restored cube still answers the full-dimensional group-by and still
// accepts deltas (Update needs the stored input for Count/Max/Min
// overlap checks and full-mask consistency). This is the unit the
// durability layer checkpoints.
const stateMagic = "PCSTATE1"

// maxStateSection bounds the declared length of one state section. The
// lengths are read back from disk, so the decoder refuses implausible
// claims before allocating (the untrusted-alloc discipline): group-by
// stores and fact tables beyond this bound do not arise from cubes this
// library can build in memory.
const maxStateSection = int64(1) << 34 // 16 GiB

// WriteState serializes the cube's complete state: every group-by plus
// the merged fact table.
func (c *Cube) WriteState(w io.Writer) error {
	var snap bytes.Buffer
	if err := cubeio.WriteSnapshot(&snap, c.store); err != nil {
		return err
	}
	if _, err := io.WriteString(w, stateMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(snap.Len())); err != nil {
		return err
	}
	if _, err := w.Write(snap.Bytes()); err != nil {
		return err
	}
	if c.input == nil {
		_, err := w.Write([]byte{0})
		return err
	}
	if _, err := w.Write([]byte{1}); err != nil {
		return err
	}
	var in bytes.Buffer
	if err := cubeio.WriteSparseBinary(&in, c.input); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(in.Len())); err != nil {
		return err
	}
	_, err := w.Write(in.Bytes())
	return err
}

// ReadCubeState restores a cube serialized by WriteState. Like snapshot
// loading, the aggregator is restated by the caller; unlike a snapshot,
// the restored cube answers the full-dimensional group-by and accepts
// further deltas.
func ReadCubeState(r io.Reader, schema *Schema, aggregator Aggregator) (*Cube, error) {
	if !aggregator.op().Valid() {
		return nil, fmt.Errorf("parcube: invalid aggregator %d", int(aggregator))
	}
	magic := make([]byte, len(stateMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("parcube: reading state magic: %w", err)
	}
	if string(magic) != stateMagic {
		return nil, fmt.Errorf("parcube: bad state magic %q", magic)
	}
	var snapLen uint64
	if err := binary.Read(r, binary.LittleEndian, &snapLen); err != nil {
		return nil, err
	}
	if int64(snapLen) > maxStateSection {
		return nil, fmt.Errorf("parcube: implausible snapshot section of %d bytes", snapLen)
	}
	store, err := cubeio.ReadSnapshot(io.LimitReader(r, int64(snapLen)))
	if err != nil {
		return nil, err
	}
	if err := validateStore(store, schema, "state"); err != nil {
		return nil, err
	}
	var hasInput [1]byte
	if _, err := io.ReadFull(r, hasInput[:]); err != nil {
		return nil, fmt.Errorf("parcube: reading state input flag: %w", err)
	}
	cube := &Cube{schema: schema, store: store, input: nil, op: aggregator.op()}
	if hasInput[0] == 0 {
		return cube, nil
	}
	var inLen uint64
	if err := binary.Read(r, binary.LittleEndian, &inLen); err != nil {
		return nil, err
	}
	if int64(inLen) > maxStateSection {
		return nil, fmt.Errorf("parcube: implausible input section of %d bytes", inLen)
	}
	sc, err := cubeio.NewSparseScanner(io.LimitReader(r, int64(inLen)))
	if err != nil {
		return nil, err
	}
	shape, err := nd.NewShape(schema.Sizes()...)
	if err != nil {
		return nil, err
	}
	if !sc.Shape().Equal(shape) {
		return nil, fmt.Errorf("parcube: state input has shape %v, schema implies %v", sc.Shape(), shape)
	}
	builder, err := array.NewSparseBuilder(shape, nil)
	if err != nil {
		return nil, err
	}
	var addErr error
	sc.Iter(func(coords []int, v float64) {
		if addErr == nil {
			addErr = builder.Add(coords, v)
		}
	})
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("parcube: state input: %w", err)
	}
	if addErr != nil {
		return nil, addErr
	}
	cube.input = builder.Build()
	return cube, nil
}

// ReadCubeStateBlock restores a cube from WriteState output restricted
// to the axis-aligned block [lo, hi): the serialized group-by snapshot
// is skipped (its tables aggregate the WHOLE source cube, which is
// wrong for a sub-block) and the cube is rebuilt from the fact-table
// section's cells inside the block. This is how a split migration seeds
// a child shard from its parent's checkpoint — the parent ships one
// state blob and each child extracts exactly its half. The state must
// carry its fact table (durable checkpoints always do); a snapshot-only
// state cannot be restricted and is refused.
func ReadCubeStateBlock(r io.Reader, schema *Schema, aggregator Aggregator, lo, hi []int) (*Cube, error) {
	if !aggregator.op().Valid() {
		return nil, fmt.Errorf("parcube: invalid aggregator %d", int(aggregator))
	}
	if len(lo) != schema.Dims() || len(hi) != schema.Dims() {
		return nil, fmt.Errorf("parcube: block rank %d/%d, schema has %d dimensions", len(lo), len(hi), schema.Dims())
	}
	for j, s := range schema.Sizes() {
		if lo[j] < 0 || hi[j] > s || lo[j] >= hi[j] {
			return nil, fmt.Errorf("parcube: block [%d,%d) out of range [0,%d) on dimension %d", lo[j], hi[j], s, j)
		}
	}
	magic := make([]byte, len(stateMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("parcube: reading state magic: %w", err)
	}
	if string(magic) != stateMagic {
		return nil, fmt.Errorf("parcube: bad state magic %q", magic)
	}
	var snapLen uint64
	if err := binary.Read(r, binary.LittleEndian, &snapLen); err != nil {
		return nil, err
	}
	if int64(snapLen) > maxStateSection {
		return nil, fmt.Errorf("parcube: implausible snapshot section of %d bytes", snapLen)
	}
	if _, err := io.CopyN(io.Discard, r, int64(snapLen)); err != nil {
		return nil, fmt.Errorf("parcube: skipping state snapshot: %w", err)
	}
	var hasInput [1]byte
	if _, err := io.ReadFull(r, hasInput[:]); err != nil {
		return nil, fmt.Errorf("parcube: reading state input flag: %w", err)
	}
	if hasInput[0] == 0 {
		return nil, fmt.Errorf("parcube: state has no fact table; cannot restrict to a block")
	}
	var inLen uint64
	if err := binary.Read(r, binary.LittleEndian, &inLen); err != nil {
		return nil, err
	}
	if int64(inLen) > maxStateSection {
		return nil, fmt.Errorf("parcube: implausible input section of %d bytes", inLen)
	}
	sc, err := cubeio.NewSparseScanner(io.LimitReader(r, int64(inLen)))
	if err != nil {
		return nil, err
	}
	shape, err := nd.NewShape(schema.Sizes()...)
	if err != nil {
		return nil, err
	}
	if !sc.Shape().Equal(shape) {
		return nil, fmt.Errorf("parcube: state input has shape %v, schema implies %v", sc.Shape(), shape)
	}
	ds := NewDataset(schema)
	var addErr error
	sc.Iter(func(coords []int, v float64) {
		if addErr != nil {
			return
		}
		for j, c := range coords {
			if c < lo[j] || c >= hi[j] {
				return
			}
		}
		addErr = ds.Add(v, coords...)
	})
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("parcube: state input: %w", err)
	}
	if addErr != nil {
		return nil, addErr
	}
	cube, _, err := Build(ds, WithAggregator(aggregator))
	if err != nil {
		return nil, fmt.Errorf("parcube: rebuilding block state: %w", err)
	}
	return cube, nil
}

// validateStore cross-checks a deserialized store against the schema:
// every group-by shaped as the schema implies, and all 2^n - 1 present.
func validateStore(store *seq.Store, schema *Schema, what string) error {
	shape, err := nd.NewShape(schema.Sizes()...)
	if err != nil {
		return err
	}
	for _, mask := range store.Masks() {
		a, _ := store.Get(mask)
		want := shape.Keep(mask.Dims())
		if !a.Shape().Equal(want) {
			return fmt.Errorf("parcube: %s group-by %b has shape %v, schema implies %v",
				what, mask, a.Shape(), want)
		}
	}
	if store.Len() != (1<<uint(schema.Dims()))-1 {
		return fmt.Errorf("parcube: %s has %d group-bys, schema implies %d",
			what, store.Len(), (1<<uint(schema.Dims()))-1)
	}
	return nil
}

// SaveDir persists the cube's group-bys to a directory (one binary file
// per group-by plus a manifest). The dataset itself is not stored; save it
// separately with WriteDatasetCSV if full-dimensional queries must survive
// the round trip.
func (c *Cube) SaveDir(dir string) error {
	store, err := cubeio.NewDirStore(dir, c.schema.Names())
	if err != nil {
		return err
	}
	for _, mask := range c.store.Masks() {
		a, _ := c.store.Get(mask)
		if err := store.WriteBack(mask, a); err != nil {
			return err
		}
	}
	return store.Flush()
}

// LoadCubeDir opens a cube previously saved with SaveDir. Like snapshot
// loading, the result answers every proper group-by; the full-dimensional
// group-by needs the original dataset.
func LoadCubeDir(dir string, schema *Schema, aggregator Aggregator) (*Cube, error) {
	if !aggregator.op().Valid() {
		return nil, fmt.Errorf("parcube: invalid aggregator %d", int(aggregator))
	}
	ds, err := cubeio.OpenDirStore(dir)
	if err != nil {
		return nil, err
	}
	store, err := ds.ToStore()
	if err != nil {
		return nil, err
	}
	shape, err := nd.NewShape(schema.Sizes()...)
	if err != nil {
		return nil, err
	}
	for _, mask := range store.Masks() {
		a, _ := store.Get(mask)
		want := shape.Keep(mask.Dims())
		if !a.Shape().Equal(want) {
			return nil, fmt.Errorf("parcube: stored group-by %b has shape %v, schema implies %v", mask, a.Shape(), want)
		}
	}
	if store.Len() != (1<<uint(schema.Dims()))-1 {
		return nil, fmt.Errorf("parcube: directory has %d group-bys, schema implies %d",
			store.Len(), (1<<uint(schema.Dims()))-1)
	}
	return &Cube{schema: schema, store: store, input: nil, op: aggregator.op()}, nil
}
