package parcube

import (
	"bytes"
	"strings"
	"testing"
)

func TestDiceAndRangeTotal(t *testing.T) {
	ds := retailDataset(t, 40, 300)
	cube, _, err := Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	ib, _ := cube.GroupBy("item", "branch")

	diced, err := ib.Dice(map[string]Range{"item": {Lo: 2, Hi: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if got := diced.Shape(); got[0] != 3 || got[1] != 6 {
		t.Fatalf("diced shape = %v", got)
	}
	for i := 0; i < 3; i++ {
		for b := 0; b < 6; b++ {
			if diced.At(i, b) != ib.At(i+2, b) {
				t.Fatalf("dice misaligned at (%d,%d)", i, b)
			}
		}
	}

	// RangeTotal equals the manual sum.
	got, err := ib.RangeTotal(map[string]Range{"item": {Lo: 2, Hi: 5}, "branch": {Lo: 1, Hi: 3}})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 2; i < 5; i++ {
		for b := 1; b < 3; b++ {
			want += ib.At(i, b)
		}
	}
	if got != want {
		t.Fatalf("RangeTotal = %v, want %v", got, want)
	}

	// Full-extent RangeTotal equals the grand total.
	all, err := ib.RangeTotal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if all != cube.Total() {
		t.Fatalf("full RangeTotal = %v, want %v", all, cube.Total())
	}
}

func TestDiceValidation(t *testing.T) {
	cube, _, _ := Build(retailDataset(t, 41, 50))
	ib, _ := cube.GroupBy("item", "branch")
	if _, err := ib.Dice(map[string]Range{"bogus": {0, 1}}); err == nil {
		t.Fatal("bogus dimension accepted")
	}
	if _, err := ib.Dice(map[string]Range{"item": {3, 2}}); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := ib.Dice(map[string]Range{"item": {0, 99}}); err == nil {
		t.Fatal("overflowing range accepted")
	}
}

func TestDatasetCSVRoundTrip(t *testing.T) {
	ds := retailDataset(t, 42, 150)
	var buf bytes.Buffer
	if err := WriteDatasetCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "item,branch,time,value\n") {
		t.Fatalf("csv header = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	loaded, err := ReadDatasetCSV(&buf, retailSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := Build(loaded)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Build(retailDataset(t, 42, 150))
	if err != nil {
		t.Fatal(err)
	}
	if a.Total() != b.Total() {
		t.Fatalf("totals differ after CSV round trip: %v vs %v", a.Total(), b.Total())
	}
}

func TestReadDatasetCSVRejectsWrongHeader(t *testing.T) {
	csv := "x,y,z,value\n0,0,0,1\n"
	if _, err := ReadDatasetCSV(strings.NewReader(csv), retailSchema(t)); err == nil {
		t.Fatal("mismatched header accepted")
	}
}

func TestCubeSnapshotRoundTripFacade(t *testing.T) {
	cube, _, err := Build(retailDataset(t, 43, 200))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cube.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCubeSnapshot(bytes.NewReader(buf.Bytes()), retailSchema(t), Sum)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Total() != cube.Total() {
		t.Fatalf("loaded total = %v, want %v", loaded.Total(), cube.Total())
	}
	got, err := loaded.GroupBy("item", "time")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := cube.GroupBy("item", "time")
	for i := 0; i < got.Size(); i++ {
		if got.data.Data()[i] != want.data.Data()[i] {
			t.Fatal("loaded cube differs")
		}
	}
	// Full-mask queries need the dataset and must error cleanly.
	if _, err := loaded.GroupBy("item", "branch", "time"); err == nil {
		t.Fatal("full group-by from snapshot accepted")
	}
	// Rollups still work on the loaded cube.
	rolled, err := got.Rollup("time")
	if err != nil {
		t.Fatal(err)
	}
	byItem, _ := cube.GroupBy("item")
	if rolled.At(0) != byItem.At(0) {
		t.Fatal("rollup on loaded cube differs")
	}
}

func TestReadCubeSnapshotValidation(t *testing.T) {
	cube, _, _ := Build(retailDataset(t, 44, 50))
	var buf bytes.Buffer
	_ = cube.WriteSnapshot(&buf)
	wrong, _ := NewSchema(Dim{Name: "a", Size: 3}, Dim{Name: "b", Size: 3}, Dim{Name: "c", Size: 3})
	if _, err := ReadCubeSnapshot(bytes.NewReader(buf.Bytes()), wrong, Sum); err == nil {
		t.Fatal("mismatched schema accepted")
	}
	if _, err := ReadCubeSnapshot(bytes.NewReader(buf.Bytes()), retailSchema(t), Aggregator(9)); err == nil {
		t.Fatal("bad aggregator accepted")
	}
	if _, err := ReadCubeSnapshot(strings.NewReader("junk"), retailSchema(t), Sum); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestSaveDirLoadDirRoundTrip(t *testing.T) {
	cube, _, err := Build(retailDataset(t, 80, 250))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := cube.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCubeDir(dir, retailSchema(t), Sum)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Total() != cube.Total() {
		t.Fatalf("loaded total %v != %v", loaded.Total(), cube.Total())
	}
	got, err := loaded.Query("GROUP BY item WHERE branch = 1")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := cube.Query("GROUP BY item WHERE branch = 1")
	for i := 0; i < got.Size(); i++ {
		if got.At(i) != want.At(i) {
			t.Fatal("loaded cube query differs")
		}
	}
	// Wrong schema is rejected.
	other, _ := NewSchema(Dim{Name: "x", Size: 2}, Dim{Name: "y", Size: 2}, Dim{Name: "z", Size: 2})
	if _, err := LoadCubeDir(dir, other, Sum); err == nil {
		t.Fatal("mismatched schema accepted")
	}
	if _, err := LoadCubeDir(t.TempDir(), retailSchema(t), Sum); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, err := LoadCubeDir(dir, retailSchema(t), Aggregator(9)); err == nil {
		t.Fatal("bad aggregator accepted")
	}
}

func TestCubeStateRoundTrip(t *testing.T) {
	ds := retailDataset(t, 77, 200)
	cube, _, err := Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cube.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCubeState(bytes.NewReader(buf.Bytes()), ds.Schema(), Sum)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total() != cube.Total() {
		t.Fatalf("restored total = %v, want %v", got.Total(), cube.Total())
	}
	// Proper group-bys round-trip cell-exactly.
	want, _ := cube.GroupBy("item", "branch")
	have, err := got.GroupBy("item", "branch")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < want.Shape()[0]; i++ {
		for j := 0; j < want.Shape()[1]; j++ {
			if have.At(i, j) != want.At(i, j) {
				t.Fatalf("cell (%d,%d) = %v, want %v", i, j, have.At(i, j), want.At(i, j))
			}
		}
	}
	// Unlike a bare snapshot, state keeps the fact table: the full
	// group-by answers, and deltas still apply.
	names := ds.Schema().Names()
	if _, err := got.GroupBy(names...); err != nil {
		t.Fatalf("full group-by after restore: %v", err)
	}
	delta := NewDataset(ds.Schema())
	if err := delta.Add(5, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := got.Update(delta); err != nil {
		t.Fatalf("update after restore: %v", err)
	}
	if got.Total() != cube.Total()+5 {
		t.Fatalf("total after restored update = %v, want %v", got.Total(), cube.Total()+5)
	}
}

func TestCubeStateRejectsCorruption(t *testing.T) {
	ds := retailDataset(t, 78, 60)
	cube, _, err := Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cube.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte inside the snapshot section: the CRC footer must
	// refuse it.
	corrupt := append([]byte(nil), data...)
	corrupt[40] ^= 0x10
	if _, err := ReadCubeState(bytes.NewReader(corrupt), ds.Schema(), Sum); err == nil {
		t.Fatal("bit-rotted cube state accepted")
	}
	if _, err := ReadCubeState(bytes.NewReader(data[:len(data)/2]), ds.Schema(), Sum); err == nil {
		t.Fatal("truncated cube state accepted")
	}
}
