package parcube

import "parcube/internal/obs"

// MetricsSnapshot is a point-in-time view of the library's process-wide
// observability registry, flattened to name -> value. Counter and gauge
// series map directly; histogram series (suffix "_ns" for nanoseconds,
// "_elems" for array elements) expand to <name>_count, <name>_p50,
// <name>_p95, <name>_p99, and <name>_max entries.
//
// Series recorded by the build engines include:
//
//	seq.builds, seq.updates, seq.build_ns, seq.peak_result_cells,
//	seq.memory_bound_cells, seq.memory_bound_violations
//	parallel.builds, parallel.updates, parallel.build_ns,
//	parallel.comm.measured_elems, parallel.comm.predicted_elems,
//	parallel.comm.bytes, parallel.comm.messages,
//	parallel.peak_cells, parallel.peak_bound_cells,
//	parallel.volume_mismatches, parallel.memory_bound_violations
//	comm.reduce.steps, comm.reduce.elems, comm.reduce.bytes,
//	comm.bcast.steps, comm.bcast.elems, comm.bcast.bytes, comm.step_elems
type MetricsSnapshot map[string]int64

// Metrics snapshots the process-wide registry every Build and
// BuildParallel records into: build counts and latencies, accumulator
// updates, peak result memory against the Theorem 1/4 bounds, and the
// measured vs. predicted (Theorem 3) communication volumes of every
// parallel run. Servers additionally expose their own per-instance
// registries through the STATS protocol command and cubeshard's -debug
// endpoint.
func Metrics() MetricsSnapshot {
	return MetricsSnapshot(obs.Default.Flatten())
}
