package parcube_test

import (
	"math/rand"
	"testing"

	"parcube"
	"parcube/internal/server"
)

// metricsDataset builds a deterministic 3-D dataset for the volume tests.
func metricsDataset(t testing.TB) *parcube.Dataset {
	t.Helper()
	schema, err := parcube.NewSchema(
		parcube.Dim{Name: "item", Size: 12},
		parcube.Dim{Name: "branch", Size: 8},
		parcube.Dim{Name: "time", Size: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	ds := parcube.NewDataset(schema)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		coords := []int{rng.Intn(12), rng.Intn(8), rng.Intn(4)}
		if err := ds.Add(float64(rng.Intn(9)+1), coords...); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

// TestParallelVolumeSelfValidation: every BuildParallel run must record a
// measured reduction volume equal to the Theorem 3 closed form
// (PredictVolume), on multiple cluster shapes and both transports, and the
// process-wide metrics must advance by exactly the run's volumes.
func TestParallelVolumeSelfValidation(t *testing.T) {
	ds := metricsDataset(t)
	sizes := ds.Schema().Sizes()
	shapes := []struct {
		name      string
		procs     int
		transport parcube.Transport
	}{
		{"p4-channel", 4, parcube.ChannelTransport},
		{"p8-channel", 8, parcube.ChannelTransport},
		{"p4-tcp", 4, parcube.TCPTransport},
	}
	for _, spec := range shapes {
		t.Run(spec.name, func(t *testing.T) {
			before := parcube.Metrics()
			_, report, err := parcube.BuildParallel(ds, parcube.ClusterSpec{Processors: spec.procs, Transport: spec.transport})
			if err != nil {
				t.Fatal(err)
			}
			if report.CommElements <= 0 {
				t.Fatalf("no communication measured: %+v", report)
			}
			if report.CommElements != report.PredictedCommElements {
				t.Fatalf("measured %d != predicted %d", report.CommElements, report.PredictedCommElements)
			}
			want, err := parcube.PredictVolume(sizes, report.Partition)
			if err != nil {
				t.Fatal(err)
			}
			if report.CommElements != want {
				t.Fatalf("measured %d != PredictVolume %d for partition %v",
					report.CommElements, want, report.Partition)
			}
			after := parcube.Metrics()
			if got := after["parallel.builds"] - before["parallel.builds"]; got != 1 {
				t.Fatalf("parallel.builds advanced by %d, want 1", got)
			}
			if got := after["parallel.comm.measured_elems"] - before["parallel.comm.measured_elems"]; got != report.CommElements {
				t.Fatalf("parallel.comm.measured_elems advanced by %d, want %d", got, report.CommElements)
			}
			if got := after["parallel.comm.predicted_elems"] - before["parallel.comm.predicted_elems"]; got != want {
				t.Fatalf("parallel.comm.predicted_elems advanced by %d, want %d", got, want)
			}
			if after["parallel.volume_mismatches"] != before["parallel.volume_mismatches"] {
				t.Fatal("volume mismatch recorded on a clean run")
			}
			if after["parallel.peak_cells"] <= 0 || after["parallel.peak_cells"] > after["parallel.peak_bound_cells"] {
				t.Fatalf("peak gauge %d outside (0, bound %d]",
					after["parallel.peak_cells"], after["parallel.peak_bound_cells"])
			}
		})
	}
}

// TestSequentialMemoryMetrics: a Build records the Theorem 1 peak and
// bound gauges, and the peak respects the bound (the runtime invariant).
func TestSequentialMemoryMetrics(t *testing.T) {
	ds := metricsDataset(t)
	_, stats, err := parcube.Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	m := parcube.Metrics()
	if m["seq.peak_result_cells"] != stats.PeakMemoryElements {
		t.Fatalf("gauge %d != stats peak %d", m["seq.peak_result_cells"], stats.PeakMemoryElements)
	}
	if m["seq.memory_bound_cells"] != stats.MemoryBoundElements {
		t.Fatalf("gauge %d != stats bound %d", m["seq.memory_bound_cells"], stats.MemoryBoundElements)
	}
	if stats.PeakMemoryElements > stats.MemoryBoundElements {
		t.Fatalf("peak %d exceeds Theorem 1 bound %d", stats.PeakMemoryElements, stats.MemoryBoundElements)
	}
	if m["seq.memory_bound_violations"] != 0 {
		t.Fatalf("memory bound violations = %d", m["seq.memory_bound_violations"])
	}
	if m["seq.builds"] < 1 || m["seq.build_ns_count"] < 1 {
		t.Fatalf("build counters missing: %v", m)
	}
}

// TestStatsExposesEngineMetrics: the extended STATS reply carries the
// process-wide build metrics, including the measured-vs-predicted volume
// pair, and the server's own per-command counters.
func TestStatsExposesEngineMetrics(t *testing.T) {
	ds := metricsDataset(t)
	cube, _, err := parcube.BuildParallel(ds, parcube.ClusterSpec{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(cube)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Total(); err != nil {
		t.Fatal(err)
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	measured, okM := stats["parallel.comm.measured_elems"]
	predicted, okP := stats["parallel.comm.predicted_elems"]
	if !okM || !okP {
		t.Fatalf("STATS missing volume fields: %v", stats)
	}
	// Every completed parallel build in this process self-validated, so
	// the running totals must agree exactly.
	if measured != predicted {
		t.Fatalf("STATS measured %s != predicted %s", measured, predicted)
	}
	if stats["cmd.total.count"] != "1" {
		t.Fatalf("cmd.total.count = %q, want 1 (stats %v)", stats["cmd.total.count"], stats)
	}
	if _, ok := stats["cmd.total_ns_count"]; !ok {
		t.Fatalf("no per-command latency fields in %v", stats)
	}
	if _, ok := stats["seq.peak_result_cells"]; !ok {
		t.Fatalf("no sequential memory gauge in %v", stats)
	}
}
