package parcube

import (
	"fmt"

	"parcube/internal/core"
	"parcube/internal/nd"
)

// resolveOptions applies options and converts name-based settings to the
// internal representations.
func resolveOptions(d *Dataset, opts []BuildOption) (*buildConfig, error) {
	cfg := &buildConfig{agg: Sum}
	for _, opt := range opts {
		opt(cfg)
	}
	if !cfg.agg.op().Valid() {
		return nil, fmt.Errorf("parcube: invalid aggregator %d", int(cfg.agg))
	}
	if cfg.orderingNames != nil {
		ordering := make(core.Ordering, 0, len(cfg.orderingNames))
		for _, name := range cfg.orderingNames {
			i, ok := d.schema.Index(name)
			if !ok {
				return nil, fmt.Errorf("parcube: unknown dimension %q in ordering", name)
			}
			ordering = append(ordering, i)
		}
		if err := ordering.Validate(d.schema.Dims()); err != nil {
			return nil, fmt.Errorf("parcube: ordering %v: %w", cfg.orderingNames, err)
		}
		cfg.ordering = ordering
	}
	return cfg, nil
}

// shapeOf validates raw sizes into a shape.
func shapeOf(sizes []int) (nd.Shape, error) {
	shape, err := nd.NewShape(sizes...)
	if err != nil {
		return nil, fmt.Errorf("parcube: %w", err)
	}
	return shape, nil
}
