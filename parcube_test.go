package parcube

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func retailSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Dim{Name: "item", Size: 8},
		Dim{Name: "branch", Size: 6},
		Dim{Name: "time", Size: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func retailDataset(t *testing.T, seed int64, facts int) *Dataset {
	t.Helper()
	ds := NewDataset(retailSchema(t))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < facts; i++ {
		if err := ds.Add(float64(rng.Intn(20)+1), rng.Intn(8), rng.Intn(6), rng.Intn(4)); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Fatal("empty schema accepted")
	}
	if _, err := NewSchema(Dim{Name: "", Size: 4}); err == nil {
		t.Fatal("unnamed dimension accepted")
	}
	if _, err := NewSchema(Dim{Name: "a", Size: 4}, Dim{Name: "a", Size: 2}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := NewSchema(Dim{Name: "a", Size: 0}); err == nil {
		t.Fatal("zero size accepted")
	}
	s := retailSchema(t)
	if s.Dims() != 3 {
		t.Fatalf("Dims = %d", s.Dims())
	}
	if i, ok := s.Index("branch"); !ok || i != 1 {
		t.Fatalf("Index(branch) = %d, %v", i, ok)
	}
	if s.Sizes()[2] != 4 {
		t.Fatalf("Sizes = %v", s.Sizes())
	}
}

func TestDatasetAddValidation(t *testing.T) {
	ds := NewDataset(retailSchema(t))
	if err := ds.Add(1, 0, 0); err == nil {
		t.Fatal("short coords accepted")
	}
	if err := ds.Add(1, 99, 0, 0); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := ds.Add(5, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if ds.Facts() != 1 {
		t.Fatalf("Facts = %d", ds.Facts())
	}
	if ds.Cells() != 1 {
		t.Fatalf("Cells = %d", ds.Cells())
	}
	// Frozen after Cells (which freezes).
	if err := ds.Add(1, 0, 0, 0); err == nil {
		t.Fatal("add after freeze accepted")
	}
}

func TestAddRecord(t *testing.T) {
	ds := NewDataset(retailSchema(t))
	err := ds.AddRecord(7, map[string]int{"time": 3, "item": 2, "branch": 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.AddRecord(1, map[string]int{"item": 0, "branch": 0}); err == nil {
		t.Fatal("missing dimension accepted")
	}
	if err := ds.AddRecord(1, map[string]int{"item": 0, "branch": 0, "bogus": 0}); err == nil {
		t.Fatal("unknown dimension accepted")
	}
	cube, _, err := Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := cube.GroupBy("item", "time")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.At(2, 3) != 7 {
		t.Fatalf("At(2,3) = %v", tbl.At(2, 3))
	}
}

func TestBuildAndQueries(t *testing.T) {
	ds := retailDataset(t, 1, 200)
	cube, stats, err := Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	if cube.NumGroupBys() != 7 {
		t.Fatalf("NumGroupBys = %d", cube.NumGroupBys())
	}
	if stats.Updates <= 0 || stats.PeakMemoryElements <= 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.PeakMemoryElements > stats.MemoryBoundElements {
		t.Fatalf("peak %d exceeds bound %d", stats.PeakMemoryElements, stats.MemoryBoundElements)
	}

	// Consistency: total equals sum over any 1-D group-by.
	total := cube.Total()
	byItem, err := cube.GroupBy("item")
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := 0; i < 8; i++ {
		sum += byItem.At(i)
	}
	if sum != total {
		t.Fatalf("sum over items %v != total %v", sum, total)
	}

	// 2-D group-by row sums match 1-D.
	byItemBranch, _ := cube.GroupBy("item", "branch")
	rowSum := 0.0
	for b := 0; b < 6; b++ {
		rowSum += byItemBranch.At(3, b)
	}
	if rowSum != byItem.At(3) {
		t.Fatalf("row sum %v != byItem %v", rowSum, byItem.At(3))
	}

	// Full group-by materializes the input.
	fullTbl, err := cube.GroupBy("item", "branch", "time")
	if err != nil {
		t.Fatal(err)
	}
	if fullTbl.Size() != 8*6*4 {
		t.Fatalf("full table size = %d", fullTbl.Size())
	}

	// Grand total via empty GroupBy.
	tot, err := cube.GroupBy()
	if err != nil {
		t.Fatal(err)
	}
	if tot.At() != total {
		t.Fatalf("0-D table = %v", tot.At())
	}
}

func TestGroupByErrors(t *testing.T) {
	ds := retailDataset(t, 2, 50)
	cube, _, _ := Build(ds)
	if _, err := cube.GroupBy("bogus"); err == nil {
		t.Fatal("unknown dimension accepted")
	}
	if _, err := cube.GroupBy("item", "item"); err == nil {
		t.Fatal("repeated dimension accepted")
	}
}

func TestTableValueAndCSVAndTop(t *testing.T) {
	ds := NewDataset(retailSchema(t))
	_ = ds.Add(10, 1, 2, 3)
	_ = ds.Add(4, 1, 5, 3)
	cube, _, _ := Build(ds)
	tbl, _ := cube.GroupBy("branch")
	v, err := tbl.Value(map[string]int{"branch": 2})
	if err != nil || v != 10 {
		t.Fatalf("Value = %v, %v", v, err)
	}
	if _, err := tbl.Value(map[string]int{"item": 1}); err == nil {
		t.Fatal("wrong dimension accepted")
	}
	if _, err := tbl.Value(map[string]int{}); err == nil {
		t.Fatal("missing coords accepted")
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "branch,value\n") {
		t.Fatalf("csv = %q", buf.String())
	}
	top := tbl.Top(2)
	if len(top) != 2 || top[0].Value != 10 || top[0].Coords[0] != 2 {
		t.Fatalf("Top = %+v", top)
	}
	if len(tbl.Top(100)) != 6 {
		t.Fatal("Top over-returns")
	}
}

func TestWithAggregator(t *testing.T) {
	ds := NewDataset(retailSchema(t))
	_ = ds.Add(5, 0, 0, 0)
	_ = ds.Add(9, 0, 1, 0)
	cube, _, err := Build(ds, WithAggregator(Max))
	if err != nil {
		t.Fatal(err)
	}
	byItem, _ := cube.GroupBy("item")
	if byItem.At(0) != 9 {
		t.Fatalf("max = %v", byItem.At(0))
	}
	if Sum.String() != "sum" || Count.String() != "count" {
		t.Fatal("aggregator names wrong")
	}
	if _, _, err := Build(retailDataset(t, 3, 5), WithAggregator(Aggregator(42))); err == nil {
		t.Fatal("bad aggregator accepted")
	}
}

func TestWithOrdering(t *testing.T) {
	ds := retailDataset(t, 4, 100)
	cube, _, err := Build(ds, WithOrdering("time", "item", "branch"))
	if err != nil {
		t.Fatal(err)
	}
	ref, _, _ := Build(retailDataset(t, 4, 100))
	for _, names := range [][]string{{"item"}, {"branch", "time"}, {}} {
		a, _ := cube.GroupBy(names...)
		b, _ := ref.GroupBy(names...)
		for i := 0; i < a.Size(); i++ {
			if a.data.Data()[i] != b.data.Data()[i] {
				t.Fatalf("ordering changed results for %v", names)
			}
		}
	}
	if _, _, err := Build(retailDataset(t, 5, 5), WithOrdering("item")); err == nil {
		t.Fatal("partial ordering accepted")
	}
	if _, _, err := Build(retailDataset(t, 5, 5), WithOrdering("a", "b", "c")); err == nil {
		t.Fatal("unknown names accepted")
	}
}

func TestBuildParallelMatchesSequential(t *testing.T) {
	ds := retailDataset(t, 6, 300)
	pcube, report, err := BuildParallel(ds, ClusterSpec{Processors: 8})
	if err != nil {
		t.Fatal(err)
	}
	scube, _, err := Build(retailDataset(t, 6, 300))
	if err != nil {
		t.Fatal(err)
	}
	for _, names := range [][]string{{"item"}, {"item", "branch"}, {"time"}, {}} {
		a, err := pcube.GroupBy(names...)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := scube.GroupBy(names...)
		for i := 0; i < a.Size(); i++ {
			if a.data.Data()[i] != b.data.Data()[i] {
				t.Fatalf("parallel differs for %v", names)
			}
		}
	}
	if report.CommElements != report.PredictedCommElements {
		t.Fatalf("measured %d != predicted %d", report.CommElements, report.PredictedCommElements)
	}
	if report.Processors != 8 || len(report.Partition) != 3 {
		t.Fatalf("report = %+v", report)
	}
}

func TestBuildParallelWithModeledTime(t *testing.T) {
	ds := retailDataset(t, 7, 400)
	_, report, err := BuildParallel(ds, ClusterSpec{
		Processors: 4,
		Network:    Network{LatencySec: 60e-6, BandwidthMBps: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.MakespanSec <= 0 || report.ModeledSequentialSec <= 0 {
		t.Fatalf("report times = %+v", report)
	}
	if report.ModeledSpeedup <= 1 {
		t.Fatalf("speedup = %v", report.ModeledSpeedup)
	}
}

func TestBuildParallelExplicitPartitionAndTCP(t *testing.T) {
	ds := retailDataset(t, 8, 200)
	cube, report, err := BuildParallel(ds, ClusterSpec{
		Processors: 4,
		Partition:  []int{1, 1, 0},
		Transport:  TCPTransport,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Partition[0] != 1 || report.Partition[1] != 1 || report.Partition[2] != 0 {
		t.Fatalf("partition = %v", report.Partition)
	}
	if cube.Total() <= 0 {
		t.Fatal("empty cube over TCP")
	}
}

func TestBuildParallelValidation(t *testing.T) {
	ds := retailDataset(t, 9, 10)
	if _, _, err := BuildParallel(ds, ClusterSpec{Processors: 3}); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, _, err := BuildParallel(ds, ClusterSpec{Processors: 0}); err == nil {
		t.Fatal("zero processors accepted")
	}
}

func TestPlanPartition(t *testing.T) {
	k, vol, err := PlanPartition([]int{64, 64, 64, 64}, 8)
	if err != nil {
		t.Fatal(err)
	}
	cuts := 0
	dims := 0
	for _, kj := range k {
		cuts += kj
		if kj > 0 {
			dims++
		}
	}
	if cuts != 3 || dims != 3 {
		t.Fatalf("plan = %v", k)
	}
	if vol <= 0 {
		t.Fatalf("volume = %d", vol)
	}
	// The planned partition's predicted volume is minimal among a few
	// alternatives.
	for _, alt := range [][]int{{3, 0, 0, 0}, {2, 1, 0, 0}, {0, 0, 2, 1}} {
		av, err := PredictVolume([]int{64, 64, 64, 64}, alt)
		if err != nil {
			t.Fatal(err)
		}
		if av < vol {
			t.Fatalf("alternative %v beats plan: %d < %d", alt, av, vol)
		}
	}
	if _, _, err := PlanPartition([]int{64}, 3); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, _, err := PlanPartition([]int{0}, 2); err == nil {
		t.Fatal("bad sizes accepted")
	}
	if _, err := PredictVolume([]int{4, 4}, []int{1}); err == nil {
		t.Fatal("short partition accepted")
	}
	if _, err := PredictVolume([]int{4, 4}, []int{-1, 0}); err == nil {
		t.Fatal("negative cuts accepted")
	}
}

func TestCubeSnapshot(t *testing.T) {
	ds := retailDataset(t, 10, 100)
	cube, _, _ := Build(ds)
	var buf bytes.Buffer
	if err := cube.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty snapshot")
	}
}

func TestPredictRunMatchesSimulation(t *testing.T) {
	// The analytic prediction must land near a real simulated build of a
	// dataset with the same shape and density.
	ds := NewDataset(retailSchema(t))
	rng := rand.New(rand.NewSource(60))
	for i := 0; i < 600; i++ {
		_ = ds.Add(float64(rng.Intn(9)+1), rng.Intn(8), rng.Intn(6), rng.Intn(4))
	}
	cells := int64(ds.Cells())
	net := Network{LatencySec: 60e-6, BandwidthMBps: 50}
	pred, err := PredictRun([]int{8, 6, 4}, cells, 4, net)
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := BuildParallel(ds, ClusterSpec{Processors: 4, Network: net})
	if err != nil {
		t.Fatal(err)
	}
	ratio := pred.ParallelSec / report.MakespanSec
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("prediction %v vs simulation %v (ratio %.2f)", pred.ParallelSec, report.MakespanSec, ratio)
	}
	if pred.CommElements != report.PredictedCommElements {
		t.Fatalf("volume %d != %d", pred.CommElements, report.PredictedCommElements)
	}
	if pred.Speedup <= 1 {
		t.Fatalf("speedup = %v", pred.Speedup)
	}
}

func TestPredictRunValidation(t *testing.T) {
	net := Network{LatencySec: 1e-6, BandwidthMBps: 100}
	if _, err := PredictRun([]int{8, 8}, 10, 3, net); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, err := PredictRun([]int{8, 8}, 0, 2, net); err == nil {
		t.Fatal("zero cells accepted")
	}
	if _, err := PredictRun([]int{8, 8}, 1000, 2, net); err == nil {
		t.Fatal("over-full cells accepted")
	}
	if _, err := PredictRun([]int{0}, 1, 2, net); err == nil {
		t.Fatal("bad sizes accepted")
	}
}
