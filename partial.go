package parcube

import (
	"fmt"

	"parcube/internal/lattice"
	"parcube/internal/views"
)

// PartialCube is a partially materialized cube: only a selected subset of
// group-bys is stored, and queries route to the cheapest materialized
// ancestor (falling back to the raw dataset). It implements the partial
// materialization the paper's conclusion points to as the natural
// application of its results, using the classic benefit-greedy selection
// of Harinarayan, Rajaraman and Ullman (the paper's reference [6]).
type PartialCube struct {
	schema *Schema
	router *views.Router
	op     Aggregator
	report *PartialReport
}

// PartialReport describes a partial materialization.
type PartialReport struct {
	// Views are the selected group-bys, named by their dimensions
	// ("item,branch"; "" is the grand total), in pick order.
	Views []string
	// StorageCells is the total cells materialized; FullCubeCells is what
	// the complete cube would store — the space saved is their difference.
	StorageCells  int64
	FullCubeCells int64
	// TotalBenefit is the greedy objective: the reduction in per-query
	// scan cost over a uniform workload, accumulated over picks.
	TotalBenefit int64
}

// QueryInfo reports how a partial-cube query was answered.
type QueryInfo struct {
	// AnsweredFrom names the materialized view used, or "dataset" when the
	// query fell back to scanning the raw facts.
	AnsweredFrom string
	// ScannedCells is the cells read to answer.
	ScannedCells int64
}

// BuildPartial materializes the `budget` most beneficial group-bys of the
// dataset and returns a queryable partial cube. The dataset is frozen by
// the call.
func BuildPartial(d *Dataset, budget int, opts ...BuildOption) (*PartialCube, *PartialReport, error) {
	cfg, err := resolveOptions(d, opts)
	if err != nil {
		return nil, nil, err
	}
	if budget < 0 {
		return nil, nil, fmt.Errorf("parcube: negative view budget %d", budget)
	}
	input := d.freeze()
	l, err := lattice.New(input.Shape())
	if err != nil {
		return nil, nil, err
	}
	sel := views.SelectGreedy(l, budget, int64(input.NNZ()))
	mats, err := views.Materialize(input, sel.Views, cfg.agg.op())
	if err != nil {
		return nil, nil, err
	}
	router, err := views.NewRouter(input, cfg.agg.op(), mats)
	if err != nil {
		return nil, nil, err
	}
	report := &PartialReport{TotalBenefit: sel.TotalBenefit}
	for _, v := range sel.Views {
		report.Views = append(report.Views, viewName(d.schema, v))
		report.StorageCells += l.SizeOf(v)
	}
	for mask := lattice.DimSet(0); mask < lattice.Full(d.schema.Dims()); mask++ {
		report.FullCubeCells += l.SizeOf(mask)
	}
	return &PartialCube{schema: d.schema, router: router, op: cfg.agg, report: report}, report, nil
}

// viewName renders a mask as comma-joined dimension names.
func viewName(s *Schema, mask lattice.DimSet) string {
	if mask == 0 {
		return "(grand total)"
	}
	out := ""
	for _, d := range mask.Dims() {
		if out != "" {
			out += ","
		}
		out += s.names[d]
	}
	return out
}

// Schema returns the cube's schema.
func (p *PartialCube) Schema() *Schema { return p.schema }

// Report returns the materialization report.
func (p *PartialCube) Report() *PartialReport { return p.report }

// GroupBy answers the group-by retaining the named dimensions, computing it
// from the cheapest materialized ancestor (or the raw dataset).
func (p *PartialCube) GroupBy(names ...string) (*Table, QueryInfo, error) {
	var mask lattice.DimSet
	for _, name := range names {
		i, ok := p.schema.Index(name)
		if !ok {
			return nil, QueryInfo{}, fmt.Errorf("parcube: unknown dimension %q", name)
		}
		if mask.Has(i) {
			return nil, QueryInfo{}, fmt.Errorf("parcube: dimension %q repeated", name)
		}
		mask = mask.With(i)
	}
	if mask == lattice.Full(p.schema.Dims()) {
		return nil, QueryInfo{}, fmt.Errorf("parcube: the full group-by is the dataset itself; query a proper subset")
	}
	a, src, err := p.router.Answer(mask)
	if err != nil {
		return nil, QueryInfo{}, err
	}
	info := QueryInfo{ScannedCells: src.ScanCost, AnsweredFrom: "dataset"}
	if !src.FromRoot {
		info.AnsweredFrom = viewName(p.schema, src.View)
	}
	dims := mask.Dims()
	tableNames := make([]string, len(dims))
	for i, d := range dims {
		tableNames[i] = p.schema.names[d]
	}
	return &Table{
		names:       tableNames,
		schemaNames: p.schema.Names(),
		mask:        mask,
		data:        a,
		op:          p.op.op(),
	}, info, nil
}

// BuildPartialUnderSpace is BuildPartial under a storage budget (total
// materialized cells) instead of a view count — pick the views with the
// best benefit per stored cell that fit.
func BuildPartialUnderSpace(d *Dataset, maxCells int64, opts ...BuildOption) (*PartialCube, *PartialReport, error) {
	cfg, err := resolveOptions(d, opts)
	if err != nil {
		return nil, nil, err
	}
	if maxCells < 0 {
		return nil, nil, fmt.Errorf("parcube: negative space budget %d", maxCells)
	}
	input := d.freeze()
	l, err := lattice.New(input.Shape())
	if err != nil {
		return nil, nil, err
	}
	sel := views.SelectGreedyUnderSpace(l, maxCells, int64(input.NNZ()))
	mats, err := views.Materialize(input, sel.Views, cfg.agg.op())
	if err != nil {
		return nil, nil, err
	}
	router, err := views.NewRouter(input, cfg.agg.op(), mats)
	if err != nil {
		return nil, nil, err
	}
	report := &PartialReport{TotalBenefit: sel.TotalBenefit}
	for _, v := range sel.Views {
		report.Views = append(report.Views, viewName(d.schema, v))
		report.StorageCells += l.SizeOf(v)
	}
	for mask := lattice.DimSet(0); mask < lattice.Full(d.schema.Dims()); mask++ {
		report.FullCubeCells += l.SizeOf(mask)
	}
	return &PartialCube{schema: d.schema, router: router, op: cfg.agg, report: report}, report, nil
}
