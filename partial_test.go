package parcube

import (
	"testing"
)

func TestBuildPartialAnswersMatchFullCube(t *testing.T) {
	ds := retailDataset(t, 20, 400)
	full, _, err := Build(retailDataset(t, 20, 400))
	if err != nil {
		t.Fatal(err)
	}
	partial, report, err := BuildPartial(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Views) == 0 || len(report.Views) > 3 {
		t.Fatalf("views = %v", report.Views)
	}
	if report.StorageCells >= report.FullCubeCells {
		t.Fatalf("partial stores %d of %d cells — no saving", report.StorageCells, report.FullCubeCells)
	}
	for _, names := range [][]string{{"item"}, {"branch"}, {"item", "time"}, {}} {
		got, info, err := partial.GroupBy(names...)
		if err != nil {
			t.Fatalf("%v: %v", names, err)
		}
		want, err := full.GroupBy(names...)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < got.Size(); i++ {
			if got.data.Data()[i] != want.data.Data()[i] {
				t.Fatalf("%v: differs from full cube (answered from %q)", names, info.AnsweredFrom)
			}
		}
		if info.ScannedCells <= 0 {
			t.Fatalf("%v: no scan cost reported", names)
		}
	}
}

func TestBuildPartialRouting(t *testing.T) {
	ds := retailDataset(t, 21, 500)
	partial, report, err := BuildPartial(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	// At least one query must be answered from a view rather than the
	// dataset: with a dense-ish dataset, the cheap 2-D views win the
	// greedy picks, and querying one of them hits it exactly.
	if len(report.Views) == 0 {
		t.Fatal("no views selected")
	}
	_, info, err := partial.GroupBy("branch", "time")
	if err != nil {
		t.Fatal(err)
	}
	if info.AnsweredFrom == "dataset" {
		t.Fatalf("query not routed through a view (views = %v)", report.Views)
	}
	// A 1-D query under a materialized ancestor also routes through it.
	_, info2, err := partial.GroupBy("time")
	if err != nil {
		t.Fatal(err)
	}
	if info2.AnsweredFrom == "dataset" {
		t.Fatalf("descendant query not routed (views = %v)", report.Views)
	}
}

func TestBuildPartialValidation(t *testing.T) {
	if _, _, err := BuildPartial(retailDataset(t, 22, 10), -1); err == nil {
		t.Fatal("negative budget accepted")
	}
	p, _, err := BuildPartial(retailDataset(t, 23, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.GroupBy("bogus"); err == nil {
		t.Fatal("unknown dimension accepted")
	}
	if _, _, err := p.GroupBy("item", "item"); err == nil {
		t.Fatal("repeated dimension accepted")
	}
	if _, _, err := p.GroupBy("item", "branch", "time"); err == nil {
		t.Fatal("full group-by accepted")
	}
}

func TestTableSliceAndRollup(t *testing.T) {
	ds := retailDataset(t, 24, 300)
	cube, _, err := Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := cube.GroupBy("item", "branch")
	if err != nil {
		t.Fatal(err)
	}
	// Slice: branch 2's per-item sales must match Value lookups.
	slice, err := ib.Slice("branch", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := slice.Dims(); len(got) != 1 || got[0] != "item" {
		t.Fatalf("slice dims = %v", got)
	}
	for i := 0; i < 8; i++ {
		if slice.At(i) != ib.At(i, 2) {
			t.Fatalf("slice mismatch at item %d", i)
		}
	}
	// Rollup: collapsing branch reproduces the 1-D item group-by.
	rolled, err := ib.Rollup("branch")
	if err != nil {
		t.Fatal(err)
	}
	byItem, _ := cube.GroupBy("item")
	for i := 0; i < 8; i++ {
		if rolled.At(i) != byItem.At(i) {
			t.Fatalf("rollup mismatch at item %d: %v != %v", i, rolled.At(i), byItem.At(i))
		}
	}
	// Rolled-up table keeps working: further rollup to grand total.
	total, err := rolled.Rollup("item")
	if err != nil {
		t.Fatal(err)
	}
	if total.At() != cube.Total() {
		t.Fatalf("double rollup = %v, want %v", total.At(), cube.Total())
	}
	// CSV of a derived table uses the right header.
	if _, err := ib.Slice("bogus", 0); err == nil {
		t.Fatal("bad slice name accepted")
	}
	if _, err := ib.Slice("branch", 99); err == nil {
		t.Fatal("bad slice index accepted")
	}
	if _, err := ib.Rollup("bogus"); err == nil {
		t.Fatal("bad rollup name accepted")
	}
}

func TestRollupCountSemantics(t *testing.T) {
	ds := NewDataset(retailSchema(t))
	_ = ds.Add(5, 0, 0, 0)
	_ = ds.Add(5, 0, 1, 0)
	_ = ds.Add(5, 1, 0, 0)
	cube, _, err := Build(ds, WithAggregator(Count))
	if err != nil {
		t.Fatal(err)
	}
	ib, _ := cube.GroupBy("item", "branch")
	rolled, err := ib.Rollup("branch")
	if err != nil {
		t.Fatal(err)
	}
	if rolled.At(0) != 2 || rolled.At(1) != 1 {
		t.Fatalf("count rollup = %v, %v", rolled.At(0), rolled.At(1))
	}
}

func TestBuildPartialUnderSpace(t *testing.T) {
	ds := retailDataset(t, 25, 400)
	cube, report, err := BuildPartialUnderSpace(ds, 60)
	if err != nil {
		t.Fatal(err)
	}
	if report.StorageCells > 60 {
		t.Fatalf("budget exceeded: %d cells", report.StorageCells)
	}
	// Answers still correct against a full cube.
	full, _, err := Build(retailDataset(t, 25, 400))
	if err != nil {
		t.Fatal(err)
	}
	for _, names := range [][]string{{"time"}, {"branch"}, {}} {
		got, _, err := cube.GroupBy(names...)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := full.GroupBy(names...)
		for i := 0; i < got.Size(); i++ {
			if got.data.Data()[i] != want.data.Data()[i] {
				t.Fatalf("%v differs under space budget", names)
			}
		}
	}
	if _, _, err := BuildPartialUnderSpace(ds, -1); err == nil {
		t.Fatal("negative budget accepted")
	}
}
