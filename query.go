package parcube

import (
	"fmt"
	"strconv"
	"strings"
)

// Query answers a small OLAP query language over the cube:
//
//	[GROUP BY dim {, dim}] [WHERE cond {AND cond}] [TOP n]
//
// where cond is either `dim = value` or `dim BETWEEN lo AND hi`
// (inclusive bounds, integer coordinates). Keywords are case-insensitive;
// dimension names are case-sensitive. Examples:
//
//	GROUP BY item
//	GROUP BY item, branch WHERE time BETWEEN 0 AND 3
//	WHERE branch = 2                      (grand total of branch 2)
//	GROUP BY item WHERE branch = 2 TOP 5
//
// Filtered dimensions not listed in GROUP BY are aggregated away after
// filtering. The result is the table over the GROUP BY dimensions; with a
// BETWEEN filter on a grouped dimension, its coordinates are re-based to
// the range's lower bound.
func (c *Cube) Query(query string) (*Table, error) {
	q, err := parseQuery(query)
	if err != nil {
		return nil, err
	}
	return c.execute(q)
}

// QueryTop is Query for statements with a TOP clause (also accepted by
// Query, which then returns the full table): it returns the top-k cells.
func (c *Cube) QueryTop(query string) ([]CellValue, error) {
	q, err := parseQuery(query)
	if err != nil {
		return nil, err
	}
	if q.top <= 0 {
		return nil, fmt.Errorf("parcube: query has no TOP clause")
	}
	tbl, err := c.execute(q)
	if err != nil {
		return nil, err
	}
	return tbl.Top(q.top), nil
}

// parsedQuery is the parsed form.
type parsedQuery struct {
	groupBy []string
	eq      map[string]int
	between map[string]Range
	top     int
}

// execute plans and runs a parsed query.
func (c *Cube) execute(q *parsedQuery) (*Table, error) {
	// The working group-by must retain every referenced dimension.
	needed := append([]string(nil), q.groupBy...)
	has := make(map[string]bool, len(needed))
	for _, n := range needed {
		has[n] = true
	}
	for name := range q.eq {
		if !has[name] {
			needed = append(needed, name)
			has[name] = true
		}
	}
	for name := range q.between {
		if !has[name] {
			needed = append(needed, name)
			has[name] = true
		}
	}
	tbl, err := c.GroupBy(needed...)
	if err != nil {
		return nil, err
	}
	// Dice ranges first (keeps dimensions), then slice equalities (drops
	// them), then roll up leftover range-filtered dimensions that were not
	// asked for.
	if len(q.between) > 0 {
		tbl, err = tbl.Dice(q.between)
		if err != nil {
			return nil, err
		}
	}
	for name, v := range q.eq {
		idx := v
		if r, ok := q.between[name]; ok {
			idx -= r.Lo // coordinates re-based by Dice
		}
		tbl, err = tbl.Slice(name, idx)
		if err != nil {
			return nil, err
		}
	}
	grouped := make(map[string]bool, len(q.groupBy))
	for _, n := range q.groupBy {
		grouped[n] = true
	}
	for name := range q.between {
		if !grouped[name] {
			if _, sliced := q.eq[name]; sliced {
				continue
			}
			tbl, err = tbl.Rollup(name)
			if err != nil {
				return nil, err
			}
		}
	}
	return tbl, nil
}

// parseQuery tokenizes and parses the query string.
func parseQuery(query string) (*parsedQuery, error) {
	tokens := tokenize(query)
	q := &parsedQuery{eq: map[string]int{}, between: map[string]Range{}}
	p := &parser{tokens: tokens}
	if p.acceptKeyword("GROUP") {
		if !p.acceptKeyword("BY") {
			return nil, p.errf("expected BY after GROUP")
		}
		for {
			name, ok := p.next()
			if !ok {
				return nil, p.errf("expected dimension after GROUP BY")
			}
			q.groupBy = append(q.groupBy, name)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKeyword("WHERE") {
		for {
			name, ok := p.next()
			if !ok {
				return nil, p.errf("expected dimension after WHERE")
			}
			switch {
			case p.accept("="):
				v, err := p.nextInt()
				if err != nil {
					return nil, err
				}
				if _, dup := q.eq[name]; dup {
					return nil, fmt.Errorf("parcube: duplicate filter on %q", name)
				}
				q.eq[name] = v
			case p.acceptKeyword("BETWEEN"):
				lo, err := p.nextInt()
				if err != nil {
					return nil, err
				}
				if !p.acceptKeyword("AND") {
					return nil, p.errf("expected AND in BETWEEN")
				}
				hi, err := p.nextInt()
				if err != nil {
					return nil, err
				}
				if hi < lo {
					return nil, fmt.Errorf("parcube: empty range %d..%d on %q", lo, hi, name)
				}
				if _, dup := q.between[name]; dup {
					return nil, fmt.Errorf("parcube: duplicate filter on %q", name)
				}
				q.between[name] = Range{Lo: lo, Hi: hi + 1} // inclusive -> half-open
			default:
				return nil, p.errf("expected = or BETWEEN after %q", name)
			}
			if !p.acceptKeyword("AND") {
				break
			}
		}
	}
	if p.acceptKeyword("TOP") {
		n, err := p.nextInt()
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("parcube: TOP %d", n)
		}
		q.top = n
	}
	if tok, ok := p.peek(); ok {
		return nil, fmt.Errorf("parcube: unexpected token %q", tok)
	}
	// An equality on a grouped dimension would leave a phantom axis.
	for _, g := range q.groupBy {
		if _, ok := q.eq[g]; ok {
			return nil, fmt.Errorf("parcube: dimension %q is both grouped and equality-filtered; use BETWEEN to keep it", g)
		}
	}
	return q, nil
}

// tokenize splits on whitespace, treating ',' and '=' as their own tokens.
func tokenize(s string) []string {
	s = strings.ReplaceAll(s, ",", " , ")
	s = strings.ReplaceAll(s, "=", " = ")
	return strings.Fields(s)
}

// parser is a cursor over tokens.
type parser struct {
	tokens []string
	pos    int
}

func (p *parser) peek() (string, bool) {
	if p.pos >= len(p.tokens) {
		return "", false
	}
	return p.tokens[p.pos], true
}

func (p *parser) next() (string, bool) {
	tok, ok := p.peek()
	if ok {
		p.pos++
	}
	return tok, ok
}

// accept consumes the token if it matches exactly.
func (p *parser) accept(tok string) bool {
	if cur, ok := p.peek(); ok && cur == tok {
		p.pos++
		return true
	}
	return false
}

// acceptKeyword consumes the token if it matches case-insensitively.
func (p *parser) acceptKeyword(kw string) bool {
	if cur, ok := p.peek(); ok && strings.EqualFold(cur, kw) {
		p.pos++
		return true
	}
	return false
}

// nextInt consumes an integer token.
func (p *parser) nextInt() (int, error) {
	tok, ok := p.next()
	if !ok {
		return 0, p.errf("expected a number")
	}
	v, err := strconv.Atoi(tok)
	if err != nil {
		return 0, fmt.Errorf("parcube: expected a number, got %q", tok)
	}
	return v, nil
}

// errf builds a position-aware parse error.
func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("parcube: query parse error at token %d: %s", p.pos, fmt.Sprintf(format, args...))
}
