package parcube

import (
	"strings"
	"testing"
	"testing/quick"
)

func queryCube(t *testing.T) *Cube {
	t.Helper()
	cube, _, err := Build(retailDataset(t, 70, 500))
	if err != nil {
		t.Fatal(err)
	}
	return cube
}

func TestQueryGroupByOnly(t *testing.T) {
	cube := queryCube(t)
	got, err := cube.Query("GROUP BY item")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := cube.GroupBy("item")
	for i := 0; i < 8; i++ {
		if got.At(i) != want.At(i) {
			t.Fatalf("item %d: %v != %v", i, got.At(i), want.At(i))
		}
	}
	// Multiple dimensions, case-insensitive keywords.
	tbl, err := cube.Query("group by item, branch")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Dims()) != 2 {
		t.Fatalf("dims = %v", tbl.Dims())
	}
}

func TestQueryGrandTotal(t *testing.T) {
	cube := queryCube(t)
	got, err := cube.Query("")
	if err != nil {
		t.Fatal(err)
	}
	if got.At() != cube.Total() {
		t.Fatalf("empty query = %v, want %v", got.At(), cube.Total())
	}
}

func TestQueryEqualityFilter(t *testing.T) {
	cube := queryCube(t)
	got, err := cube.Query("GROUP BY item WHERE branch = 2")
	if err != nil {
		t.Fatal(err)
	}
	ib, _ := cube.GroupBy("item", "branch")
	for i := 0; i < 8; i++ {
		if got.At(i) != ib.At(i, 2) {
			t.Fatalf("item %d: %v != %v", i, got.At(i), ib.At(i, 2))
		}
	}
	// Equality filter alone: scalar.
	tot, err := cube.Query("WHERE branch = 2")
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := 0; i < 8; i++ {
		sum += ib.At(i, 2)
	}
	if tot.At() != sum {
		t.Fatalf("filtered total = %v, want %v", tot.At(), sum)
	}
}

func TestQueryBetweenFilter(t *testing.T) {
	cube := queryCube(t)
	// Ungrouped BETWEEN: aggregated away after dicing.
	got, err := cube.Query("GROUP BY item WHERE time BETWEEN 1 AND 2")
	if err != nil {
		t.Fatal(err)
	}
	it, _ := cube.GroupBy("item", "time")
	for i := 0; i < 8; i++ {
		want := it.At(i, 1) + it.At(i, 2)
		if got.At(i) != want {
			t.Fatalf("item %d: %v != %v", i, got.At(i), want)
		}
	}
	// Grouped BETWEEN: kept, coordinates re-based.
	tbl, err := cube.Query("GROUP BY time WHERE time BETWEEN 1 AND 3")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Shape()[0] != 3 {
		t.Fatalf("range-kept shape = %v", tbl.Shape())
	}
	byTime, _ := cube.GroupBy("time")
	if tbl.At(0) != byTime.At(1) || tbl.At(2) != byTime.At(3) {
		t.Fatal("re-based coordinates wrong")
	}
}

func TestQueryCombinedFilters(t *testing.T) {
	cube := queryCube(t)
	got, err := cube.Query("GROUP BY item WHERE branch = 1 AND time BETWEEN 0 AND 1")
	if err != nil {
		t.Fatal(err)
	}
	full, _ := cube.GroupBy("item", "branch", "time")
	for i := 0; i < 8; i++ {
		want := full.At(i, 1, 0) + full.At(i, 1, 1)
		if got.At(i) != want {
			t.Fatalf("item %d: %v != %v", i, got.At(i), want)
		}
	}
}

func TestQueryEqualityWithinRange(t *testing.T) {
	cube := queryCube(t)
	// BETWEEN and = on the same dimension: the equality wins within the
	// diced range.
	got, err := cube.Query("GROUP BY item WHERE time BETWEEN 1 AND 3 AND time = 2")
	if err != nil {
		t.Fatal(err)
	}
	it, _ := cube.GroupBy("item", "time")
	for i := 0; i < 8; i++ {
		if got.At(i) != it.At(i, 2) {
			t.Fatalf("item %d: %v != %v", i, got.At(i), it.At(i, 2))
		}
	}
}

func TestQueryTop(t *testing.T) {
	cube := queryCube(t)
	top, err := cube.QueryTop("GROUP BY branch TOP 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].Value < top[1].Value {
		t.Fatalf("top = %+v", top)
	}
	byBranch, _ := cube.GroupBy("branch")
	if top[0].Value != byBranch.Top(1)[0].Value {
		t.Fatal("QueryTop disagrees with Table.Top")
	}
	// Query with a TOP clause still returns the full table.
	tbl, err := cube.Query("GROUP BY branch TOP 2")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Size() != 6 {
		t.Fatalf("table size = %d", tbl.Size())
	}
	if _, err := cube.QueryTop("GROUP BY branch"); err == nil {
		t.Fatal("QueryTop without TOP accepted")
	}
}

func TestQueryParseErrors(t *testing.T) {
	cube := queryCube(t)
	for _, q := range []string{
		"GROUP item",                                // missing BY
		"GROUP BY",                                  // missing dimension
		"GROUP BY item WHERE",                       // missing condition
		"GROUP BY item WHERE time",                  // missing operator
		"GROUP BY item WHERE time = x",              // bad number
		"GROUP BY item WHERE time BETWEEN 1",        // missing AND
		"GROUP BY item WHERE time BETWEEN 3 AND 1",  // empty range
		"GROUP BY item WHERE time = 1 AND time = 2", // duplicate filter
		"GROUP BY item TOP 0",                       // bad top
		"GROUP BY item TOP x",                       // bad top number
		"GROUP BY item EXTRA",                       // trailing token
		"GROUP BY bogus",                            // unknown dimension
		"GROUP BY item WHERE item = 1",              // grouped + equality
		"GROUP BY item WHERE time BETWEEN 0 AND 99", // out of range
	} {
		if _, err := cube.Query(q); err == nil {
			t.Fatalf("accepted %q", q)
		}
	}
}

// Property: arbitrary token soup never panics the parser; it either parses
// or returns an error.
func TestQuickQueryNeverPanics(t *testing.T) {
	cube := queryCube(t)
	words := []string{"GROUP", "BY", "WHERE", "AND", "BETWEEN", "TOP", "item",
		"branch", "time", "bogus", "=", ",", "1", "3", "-2", "x", ""}
	f := func(picks [8]uint8) bool {
		parts := make([]string, 0, 8)
		for _, p := range picks {
			parts = append(parts, words[int(p)%len(words)])
		}
		q := strings.Join(parts, " ")
		defer func() {
			if recover() != nil {
				t.Errorf("query %q panicked", q)
			}
		}()
		_, _ = cube.Query(q)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
