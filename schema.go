// Package parcube is a Go library for sequential and parallel data cube
// construction over multidimensional sparse arrays, reproducing the
// algorithms of "Communication and Memory Optimal Parallel Data Cube
// Construction" (Jin, Yang, Vaidyanathan, Agrawal; ICPP 2003).
//
// The library builds all 2^n group-by aggregates of an n-dimensional
// dataset using the paper's aggregation tree, which reads the input once,
// computes all children of a node in a single scan, and provably minimizes
// the memory held for intermediate results (Theorems 1 and 2). The parallel
// builder runs the same construction over a simulated shared-nothing
// machine with a from-scratch message-passing layer, block-partitioning the
// input with the communication-optimal greedy partitioner (Theorem 8) and
// finalizing group-bys with reductions onto lead processors; the
// communication volume it measures matches the paper's closed form
// (Theorem 3) exactly.
//
// Quick start:
//
//	schema, _ := parcube.NewSchema(
//		parcube.Dim{Name: "item", Size: 64},
//		parcube.Dim{Name: "branch", Size: 16},
//		parcube.Dim{Name: "time", Size: 32},
//	)
//	ds := parcube.NewDataset(schema)
//	ds.Add(12.5, 3, 1, 30) // item 3, branch 1, time 30 sold 12.5 units
//	cube, _ := parcube.Build(ds)
//	byItem, _ := cube.GroupBy("item")
//	fmt.Println(byItem.At(3))
package parcube

import (
	"fmt"

	"parcube/internal/array"
	"parcube/internal/nd"
)

// Dim declares one dimension of a dataset: a name and the number of
// distinct coordinate values.
type Dim struct {
	Name string
	Size int
}

// Schema is an ordered list of named dimensions.
type Schema struct {
	names []string
	shape nd.Shape
	index map[string]int
}

// NewSchema validates and builds a schema. Dimension names must be unique
// and non-empty; sizes must be positive.
func NewSchema(dims ...Dim) (*Schema, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("parcube: schema needs at least one dimension")
	}
	s := &Schema{index: make(map[string]int, len(dims))}
	sizes := make([]int, len(dims))
	for i, d := range dims {
		if d.Name == "" {
			return nil, fmt.Errorf("parcube: dimension %d has no name", i)
		}
		if _, dup := s.index[d.Name]; dup {
			return nil, fmt.Errorf("parcube: duplicate dimension %q", d.Name)
		}
		s.index[d.Name] = i
		s.names = append(s.names, d.Name)
		sizes[i] = d.Size
	}
	shape, err := nd.NewShape(sizes...)
	if err != nil {
		return nil, fmt.Errorf("parcube: %w", err)
	}
	s.shape = shape
	return s, nil
}

// Dims returns the number of dimensions.
func (s *Schema) Dims() int { return len(s.names) }

// Names returns the dimension names in schema order.
func (s *Schema) Names() []string { return append([]string(nil), s.names...) }

// Sizes returns the dimension sizes in schema order.
func (s *Schema) Sizes() []int { return append([]int(nil), s.shape...) }

// Index returns the position of a named dimension.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Dataset accumulates facts (sparse cells) for cube construction. Facts
// with identical coordinates are summed, matching fact-table semantics.
// A Dataset may keep receiving facts until the first Build; afterwards it
// is frozen.
type Dataset struct {
	schema  *Schema
	builder *array.SparseBuilder
	sparse  *array.Sparse
	facts   int64
}

// NewDataset creates an empty dataset over the schema.
func NewDataset(schema *Schema) *Dataset {
	b, err := array.NewSparseBuilder(schema.shape, nil)
	if err != nil {
		// The schema already validated the shape.
		panic(err)
	}
	return &Dataset{schema: schema, builder: b}
}

// Schema returns the dataset's schema.
func (d *Dataset) Schema() *Schema { return d.schema }

// Add records one fact: a measure value at integer coordinates in schema
// order.
func (d *Dataset) Add(value float64, coords ...int) error {
	if d.builder == nil {
		return fmt.Errorf("parcube: dataset is frozen after Build")
	}
	if len(coords) != d.schema.Dims() {
		return fmt.Errorf("parcube: %d coordinates for %d dimensions", len(coords), d.schema.Dims())
	}
	if err := d.builder.Add(coords, value); err != nil {
		return fmt.Errorf("parcube: %w", err)
	}
	d.facts++
	return nil
}

// AddRecord records one fact with coordinates keyed by dimension name.
func (d *Dataset) AddRecord(value float64, coords map[string]int) error {
	ordered := make([]int, d.schema.Dims())
	if len(coords) != d.schema.Dims() {
		return fmt.Errorf("parcube: record has %d coordinates, schema has %d", len(coords), d.schema.Dims())
	}
	for name, c := range coords {
		i, ok := d.schema.Index(name)
		if !ok {
			return fmt.Errorf("parcube: unknown dimension %q", name)
		}
		ordered[i] = c
	}
	return d.Add(value, ordered...)
}

// Facts returns the number of Add calls so far.
func (d *Dataset) Facts() int64 { return d.facts }

// freeze finalizes the sparse array (idempotent).
func (d *Dataset) freeze() *array.Sparse {
	if d.sparse == nil {
		d.sparse = d.builder.Build()
		d.builder = nil
	}
	return d.sparse
}

// Cells returns the number of distinct non-empty cells. It freezes the
// dataset.
func (d *Dataset) Cells() int { return d.freeze().NNZ() }
