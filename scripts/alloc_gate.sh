#!/bin/sh
# Allocation budget gate for the hot paths fixed in PR 9 (see
# BENCH_9.json): the mux frame codec, the query-cache hit paths, and
# the scan kernels each carry an allocs/op + B/op ceiling in
# scripts/alloc_budget.json (one JSON object per line: bench, pkg,
# max_allocs_per_op, max_bytes_per_op). A change that reintroduces a
# per-frame or per-hit allocation fails this gate instead of shipping
# as a silent 10x regression.
#
#   scripts/alloc_gate.sh                 run the budgeted benchmarks and enforce the budget
#   scripts/alloc_gate.sh -check OUT BUD  enforce budget file BUD against canned `go test -benchmem` output OUT
#   scripts/alloc_gate.sh -selftest       prove the gate rejects an injected regression
#
# Benchmarks run with the fixed iteration count each budget line names
# in its "benchtime" field (ALLOC_BENCH_TIME overrides them all), which
# is exact for allocs/op: the runtime reports the integer mean over the
# measured iterations, and the gated paths allocate deterministically.
# Ns-scale benches need the larger counts so one-time pool warm-up
# amortizes to 0 B/op instead of polluting the byte column.
set -eu

cd "$(dirname "$0")/.."

budget="scripts/alloc_budget.json"

# check BENCH_OUTPUT BUDGET: every budgeted benchmark must appear in the
# output with -benchmem columns at or under its ceilings.
check() {
	awk '
FNR == NR {
    if (match($0, /"bench":[ \t]*"[^"]*"/)) {
        name = substr($0, RSTART, RLENGTH)
        sub(/^"bench":[ \t]*"/, "", name)
        sub(/"$/, "", name)
        if (match($0, /"max_allocs_per_op":[ \t]*[0-9]+/)) {
            v = substr($0, RSTART, RLENGTH); sub(/^[^0-9]*/, "", v)
            maxa[name] = v + 0
        }
        if (match($0, /"max_bytes_per_op":[ \t]*[0-9]+/)) {
            v = substr($0, RSTART, RLENGTH); sub(/^[^0-9]*/, "", v)
            maxb[name] = v + 0
        }
    }
    next
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in maxa)) next
    seen[name] = 1
    allocs = -1; bytes = -1
    for (i = 3; i <= NF; i++) {
        if ($i == "allocs/op") allocs = $(i - 1) + 0
        if ($i == "B/op") bytes = $(i - 1) + 0
    }
    if (allocs < 0 || bytes < 0) {
        printf "alloc_gate: FAIL — %s has no -benchmem columns\n", name
        bad = 1
        next
    }
    if (allocs > maxa[name] || bytes > maxb[name]) {
        printf "alloc_gate: FAIL — %s: %d allocs/op, %d B/op over budget (%d allocs/op, %d B/op)\n", \
            name, allocs, bytes, maxa[name], maxb[name]
        bad = 1
    } else {
        printf "alloc_gate: OK — %s: %d allocs/op, %d B/op within budget (%d allocs/op, %d B/op)\n", \
            name, allocs, bytes, maxa[name], maxb[name]
    }
}
END {
    for (name in maxa) {
        if (!(name in seen)) {
            printf "alloc_gate: FAIL — budgeted benchmark %s missing from the output\n", name
            bad = 1
        }
    }
    exit bad
}
' "$2" "$1"
}

selftest() {
	tmpd=$(mktemp -d)
	trap 'rm -rf "$tmpd"' EXIT
	printf '%s\n' \
		'{"bench": "BenchmarkSelfTest", "pkg": "./selftest", "max_allocs_per_op": 1, "max_bytes_per_op": 64}' \
		>"$tmpd/budget.json"
	printf 'BenchmarkSelfTest-8 \t 1000 \t 100 ns/op \t 64 B/op \t 1 allocs/op\n' >"$tmpd/ok.txt"
	printf 'BenchmarkSelfTest-8 \t 1000 \t 100 ns/op \t 128 B/op \t 9 allocs/op\n' >"$tmpd/bad.txt"
	check "$tmpd/ok.txt" "$tmpd/budget.json" >/dev/null || {
		echo "alloc_gate: selftest FAILED — within-budget output was rejected"
		exit 1
	}
	if check "$tmpd/bad.txt" "$tmpd/budget.json" >/dev/null 2>&1; then
		echo "alloc_gate: selftest FAILED — injected regression passed the gate"
		exit 1
	fi
	echo "alloc_gate: selftest OK — within-budget accepted, injected regression rejected"
}

case "${1:-}" in
-check)
	[ $# -eq 3 ] || { echo "usage: alloc_gate.sh -check BENCH_OUTPUT BUDGET" >&2; exit 2; }
	check "$2" "$3"
	exit $?
	;;
-selftest)
	selftest
	exit 0
	;;
"") ;;
*)
	echo "usage: alloc_gate.sh [-check BENCH_OUTPUT BUDGET | -selftest]" >&2
	exit 2
	;;
esac

# Default mode: one `go test -bench` per budgeted package, pattern built
# from that package's budgeted benchmark roots, then one check pass.
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

pairs=$(awk '
match($0, /"bench":[ \t]*"[^"]*"/) {
    n = substr($0, RSTART, RLENGTH)
    sub(/^"bench":[ \t]*"/, "", n); sub(/"$/, "", n)
    sub(/\/.*/, "", n)
    bt = "100x"
    if (match($0, /"benchtime":[ \t]*"[^"]*"/)) {
        bt = substr($0, RSTART, RLENGTH)
        sub(/^"benchtime":[ \t]*"/, "", bt); sub(/"$/, "", bt)
    }
    if (match($0, /"pkg":[ \t]*"[^"]*"/)) {
        p = substr($0, RSTART, RLENGTH)
        sub(/^"pkg":[ \t]*"/, "", p); sub(/"$/, "", p)
        print p "\t" n "\t" bt
    }
}' "$budget" | sort -u)

for pkg in $(printf '%s\n' "$pairs" | cut -f1 | sort -u); do
	pat=$(printf '%s\n' "$pairs" | awk -F'\t' -v p="$pkg" '
		$1 == p { printf "%s%s", sep, $2; sep = "|" }')
	bt=$(printf '%s\n' "$pairs" | awk -F'\t' -v p="$pkg" '$1 == p { print $3; exit }')
	go test -run '^$' -bench "^($pat)\$" -benchtime "${ALLOC_BENCH_TIME:-$bt}" \
		-benchmem "$pkg" | tee -a "$tmp"
done

check "$tmp" "$budget"
