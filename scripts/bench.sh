#!/bin/sh
# Runs the figure-regeneration benchmarks and converts the output into a
# machine-readable JSON file (default BENCH_2.json): one record per
# benchmark with its iteration count, ns/op, and every custom metric the
# bench reports (modeled-s, comm-elems, comm-bytes, peak-elems,
# ns/update). Used by `make bench-json`.
#
#   scripts/bench.sh [output.json]
#
# BENCH_PATTERN and BENCH_TIME override the benchmark selection and
# -benchtime (defaults: the figure + theorem benches, 1 iteration).
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_2.json}"
pattern="${BENCH_PATTERN:-Fig7|Fig8|Fig9|Sequential|MemoryBound|CommVolume|ScanKernel}"
benchtime="${BENCH_TIME:-1x}"

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" . | tee "$tmp"

awk '
BEGIN { print "["; sep = "" }
/^Benchmark/ {
    printf "%s  {\"name\": \"%s\", \"iterations\": %s", sep, $1, $2
    sep = ",\n"
    # Fields after the iteration count come in value/unit pairs.
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/-/, "_", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { print "\n]" }
' "$tmp" >"$out"

echo "wrote $out"
