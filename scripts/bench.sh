#!/bin/sh
# Runs the figure-regeneration benchmarks and converts the output into a
# machine-readable JSON file (default BENCH_2.json): one record per
# benchmark with its iteration count, ns/op, and every custom metric the
# bench reports (modeled-s, comm-elems, comm-bytes, peak-elems,
# ns/update). Also runs the durability benchmarks (WAL append and replay
# throughput, checkpoint write, recovery open) into a second file
# (default BENCH_5.json), the serving-tier load benchmark (cubeload
# over many multiplexed connections against cached and uncached
# coordinators, see scripts/loadgen.sh) into a third (default
# BENCH_6.json), the group-commit ingest comparison (grouped vs
# per-record fsync=always append) into a fourth (default BENCH_7.json),
# and the elastic migration benchmark (checkpoint ship + WAL catch-up
# into a joining node: MB/s shipped, records/s replayed, cutover p99)
# into a fifth (default BENCH_10.json).
# Used by `make bench-json`.
#
#   scripts/bench.sh [figures.json] [durability.json] [loadgen.json] [groupcommit.json] [elastic.json]
#
# BENCH_PATTERN and BENCH_TIME override the figure-benchmark selection
# and its -benchtime (default: the figure + theorem benches, 1
# iteration each — these regenerate deterministic modeled figures, so
# one iteration is the right default). WAL_BENCH_PATTERN and
# WAL_BENCH_TIME override the durability benches, which measure real
# I/O throughput and therefore default to a timed -benchtime of 1s —
# a single iteration would report meaningless ns/op for them.
# LOADGEN_CONNS and LOADGEN_DURATION size the load stage (defaults
# 10000 connections, 5s measured).
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_2.json}"
walout="${2:-BENCH_5.json}"
loadout="${3:-BENCH_6.json}"
groupout="${4:-BENCH_7.json}"
elasticout="${5:-BENCH_10.json}"
pattern="${BENCH_PATTERN:-Fig7|Fig8|Fig9|Sequential|MemoryBound|CommVolume|ScanKernel}"
walpattern="${WAL_BENCH_PATTERN:-WALAppend|WALReplay|CheckpointWrite|RecoveryOpen}"
grouppattern="${GROUP_BENCH_PATTERN:-WALGroupCommit|WALAppend/fsync=always}"
elasticpattern="${ELASTIC_BENCH_PATTERN:-ShipAndCatchUp}"
benchtime="${BENCH_TIME:-1x}"
walbenchtime="${WAL_BENCH_TIME:-1s}"

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# tojson converts `go test -bench` output on stdin into a JSON array;
# fields after the iteration count come in value/unit pairs.
tojson() {
	awk '
BEGIN { print "["; sep = "" }
/^Benchmark/ {
    printf "%s  {\"name\": \"%s\", \"iterations\": %s", sep, $1, $2
    sep = ",\n"
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/-/, "_", unit)
        gsub(/=/, "_", unit)
        if (unit == "B_per_op") unit = "bytes_per_op"
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { print "\n]" }
'
}

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" . | tee "$tmp"
tojson <"$tmp" >"$out"
echo "wrote $out"

go test -run '^$' -bench "$walpattern" -benchtime "$walbenchtime" \
	./internal/wal ./internal/recovery | tee "$tmp"
tojson <"$tmp" >"$walout"
echo "wrote $walout"

go test -run '^$' -bench "$grouppattern" -benchtime "$walbenchtime" \
	./internal/wal | tee "$tmp"
tojson <"$tmp" >"$groupout"
echo "wrote $groupout"

go test -run '^$' -bench "$elasticpattern" -benchtime "$walbenchtime" \
	./internal/elastic | tee "$tmp"
tojson <"$tmp" >"$elasticout"
echo "wrote $elasticout"

./scripts/loadgen.sh "$loadout"
