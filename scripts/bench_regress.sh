#!/bin/sh
# Bench-regression gate for the group-commit ingest path.
#
# The durable-ingest promise of the group-commit work is quantitative:
# under fsync=always, the commit-waiter queue must make acked-delta
# appends at least 100x cheaper than the per-record-fsync baseline
# recorded in BENCH_5.json before group commit landed (633167 ns/op).
# This script enforces that bar so a refactor that quietly serializes
# the queue (or reintroduces a sync per record) fails CI instead of
# shipping.
#
#   scripts/bench_regress.sh [groupcommit.json]
#
# With an argument naming an existing BENCH_7-style JSON file (as
# written by scripts/bench.sh), the check runs against it. Otherwise
# the group-commit benchmark is run fresh into a temp file first.
# WAL_BENCH_TIME overrides the fresh run's -benchtime (default 1s).
set -eu

cd "$(dirname "$0")/.."

# Pre-group-commit fsync=always baseline: BenchmarkWALAppend/fsync=always
# from BENCH_5.json as of the durability PR, in ns/op.
baseline=633167
factor=100

json="${1:-}"
if [ -z "$json" ] || [ ! -f "$json" ]; then
	[ -n "$json" ] && echo "bench_regress: $json not found, running benchmark fresh" >&2
	json=$(mktemp)
	trap 'rm -f "$json"' EXIT
	bench=$(mktemp)
	go test -run '^$' -bench 'WALGroupCommit' \
		-benchtime "${WAL_BENCH_TIME:-1s}" ./internal/wal | tee "$bench"
	awk '
BEGIN { print "[" ; sep = "" }
/^Benchmark/ {
    printf "%s  {\"name\": \"%s\", \"ns_per_op\": %s}", sep, $1, $3
    sep = ",\n"
}
END { print "\n]" }
' <"$bench" >"$json"
	rm -f "$bench"
fi

awk -v base="$baseline" -v factor="$factor" '
/WALGroupCommit\/wait=0/ {
    if (match($0, /"ns_per_op": [0-9.e+]+/) == 0) next
    v = substr($0, RSTART + 13, RLENGTH - 13) + 0
    found = 1
    bound = base / factor
    if (v > bound) {
        printf "bench_regress: FAIL — group commit %.0f ns/op exceeds %.0f ns/op (baseline %d / %dx)\n", v, bound, base, factor
        exit 1
    }
    printf "bench_regress: OK — group commit %.0f ns/op is %.0fx faster than the %d ns/op per-record-fsync baseline (bar: %dx)\n", v, base / v, base, factor
}
END {
    if (!found) {
        print "bench_regress: FAIL — no WALGroupCommit/wait=0 row found (run scripts/bench.sh first)"
        exit 1
    }
}
' "$json"
