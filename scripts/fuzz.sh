#!/bin/sh
# Runs every native Go fuzz target for a short burst each (default 10s),
# one at a time — `go test -fuzz` accepts a single target per invocation.
# Used by `make fuzz-smoke` and CI.
#
#   scripts/fuzz.sh [fuzztime]
set -eu

cd "$(dirname "$0")/.."

fuzztime="${1:-10s}"

for pkg in . ./internal/server ./internal/cubeio; do
    for target in $(go test -list '^Fuzz' "$pkg" | grep '^Fuzz' || true); do
        echo "==> $pkg $target ($fuzztime)"
        go test -run '^$' -fuzz "^${target}\$" -fuzztime "$fuzztime" "$pkg"
    done
done
