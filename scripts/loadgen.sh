#!/bin/sh
# Serving-tier load benchmark: boots a 2-node shard cluster plus two
# coordinators — one bare, one with the full serving tier (hot group-by
# cache, pinned views, hedged reads) — and drives cubeload's multiplexed
# workload against each. The two JSON rows land in one file (default
# BENCH_6.json) so the suite can compare the cached and uncached paths.
#
#   scripts/loadgen.sh [out.json] [conns] [duration]
#
# LOADGEN_CONNS / LOADGEN_DURATION / LOADGEN_INFLIGHT override the
# positional defaults (10000 connections, 5s measured). Both
# coordinators run the same admission control (-max-inflight) so the
# comparison isolates the cache, and the queue is sized to hold every
# connection's request without shedding.
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_6.json}"
conns="${LOADGEN_CONNS:-${2:-10000}}"
duration="${LOADGEN_DURATION:-${3:-5s}}"
inflight="${LOADGEN_INFLIGHT:-1}"

# Each side needs conns sockets in the loadgen and the coordinator.
ulimit -n 20000 2>/dev/null || true

bin=$(mktemp -d)
pids=""
cleanup() {
	for p in $pids; do
		kill "$p" 2>/dev/null || true
	done
	wait 2>/dev/null || true
	rm -rf "$bin"
}
trap cleanup EXIT INT TERM

echo "==> building cubegen, cubeshard, cubeload"
go build -o "$bin" ./cmd/cubegen ./cmd/cubeshard ./cmd/cubeload

"$bin/cubegen" -shape 16x16x16 -sparsity 20 -seed 6 >"$bin/facts.csv"

# wait_addr polls a process's stderr log for its "... on 127.0.0.1:port"
# banner and prints the bound address.
wait_addr() {
	i=0
	while [ "$i" -lt 100 ]; do
		addr=$(sed -n 's/.* on \(127\.0\.0\.1:[0-9][0-9]*\).*/\1/p' "$1" | head -n 1)
		if [ -n "$addr" ]; then
			echo "$addr"
			return 0
		fi
		i=$((i + 1))
		sleep 0.1
	done
	echo "loadgen: no listen banner in $1" >&2
	cat "$1" >&2
	return 1
}

echo "==> starting 2 shard nodes"
"$bin/cubeshard" -shape 16x16x16 -in "$bin/facts.csv" -nodes 2 -replicas 1 -node 0 \
	-addr 127.0.0.1:0 2>"$bin/node0.log" &
pids="$pids $!"
"$bin/cubeshard" -shape 16x16x16 -in "$bin/facts.csv" -nodes 2 -replicas 1 -node 1 \
	-addr 127.0.0.1:0 2>"$bin/node1.log" &
pids="$pids $!"
n0=$(wait_addr "$bin/node0.log")
n1=$(wait_addr "$bin/node1.log")

echo "==> starting uncached and cached coordinators over $n0,$n1"
admission="-max-inflight 256 -max-queue $((conns * inflight)) -admit-deadline 120s"
# shellcheck disable=SC2086
"$bin/cubeshard" -coordinator -shards "$n0,$n1" -addr 127.0.0.1:0 \
	$admission 2>"$bin/coord_uncached.log" &
pids="$pids $!"
# shellcheck disable=SC2086
"$bin/cubeshard" -coordinator -shards "$n0,$n1" -addr 127.0.0.1:0 \
	$admission -cache-cells 1048576 -cache-pin 4096 -hedge 2>"$bin/coord_cached.log" &
pids="$pids $!"
uncached=$(wait_addr "$bin/coord_uncached.log")
cached=$(wait_addr "$bin/coord_cached.log")

echo "==> loadgen: $conns mux connections x ${inflight} in flight, $duration measured"
"$bin/cubeload" -addr "$uncached" -conns "$conns" -inflight "$inflight" \
	-duration "$duration" -timeout 120s -name loadgen_uncached -json "$bin/row_uncached.json"
"$bin/cubeload" -addr "$cached" -conns "$conns" -inflight "$inflight" \
	-duration "$duration" -timeout 120s -name loadgen_cached -json "$bin/row_cached.json"

{
	echo "["
	sed -e 's/^/  /' -e 's/}$/},/' "$bin/row_uncached.json"
	sed -e 's/^/  /' "$bin/row_cached.json"
	echo "]"
} >"$out"
echo "wrote $out"

# The cached path must beat the uncached one on the hot group-by
# workload; at smoke scale (few connections, short runs) the measurement
# is too noisy to gate on, so only warn there.
qps_u=$(sed -n 's/.*"qps": *\([0-9.]*\).*/\1/p' "$bin/row_uncached.json")
qps_c=$(sed -n 's/.*"qps": *\([0-9.]*\).*/\1/p' "$bin/row_cached.json")
echo "uncached: $qps_u qps, cached: $qps_c qps"
if ! awk -v u="$qps_u" -v c="$qps_c" 'BEGIN { exit !(c > u) }'; then
	if [ "$conns" -ge 1000 ]; then
		echo "loadgen: FAILED: cached coordinator ($qps_c qps) did not beat uncached ($qps_u qps)" >&2
		exit 1
	fi
	echo "loadgen: warning: cached ($qps_c qps) did not beat uncached ($qps_u qps) at smoke scale" >&2
fi
