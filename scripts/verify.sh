#!/bin/sh
# Full verification gate: build everything, vet everything, and run the
# whole test suite under the race detector. Used by `make verify` and
# intended as the pre-commit / CI entry point.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
