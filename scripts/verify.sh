#!/bin/sh
# Full verification gate, staged so the cheap checks fail fast:
#
#   1. gofmt    — formatting drift (fails if any file needs gofmt)
#   2. go build — everything compiles
#   3. go vet   — the stock analyzers
#   4. go vet (full) — the extended analyzer set (copylocks, lostcancel,
#                 unusedresult, ...) that the default vet run omits
#   5. cubelint — the project-specific invariant analyzers
#                 (internal/lint), including the interprocedural
#                 lock-order / durability-order / lsn-discipline /
#                 deadline-prop protocol checks, ratcheted against the
#                 committed baseline
#   6. recovery — the crash/durability wall: WAL torn-tail recovery,
#                 checkpoint restore, kill -9 shard rejoin, group-commit
#                 batching and divergence repair (race-enabled)
#   7. loadgen  — serving-tier smoke: a real cluster behind cached and
#                 uncached coordinators driven by cubeload over MUX
#   8. go test  — the whole suite under the race detector
#
# Used by `make verify` and intended as the pre-commit / CI entry point.
# Each stage prints a banner on failure naming the stage that broke.
set -u

cd "$(dirname "$0")/.."

fail() {
	echo "" >&2
	echo "verify: FAILED at stage: $1" >&2
	exit 1
}

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "$unformatted"
	echo "run: gofmt -w ." >&2
	fail gofmt
fi

echo "==> go build"
go build ./... || fail "go build"

echo "==> go vet"
go vet ./... || fail "go vet"

echo "==> go vet (full analyzer set)"
go vet -copylocks -lostcancel -unusedresult -atomic -nilfunc -unreachable -printf ./... || fail "go vet full"

echo "==> cubelint"
go run ./cmd/cubelint -baseline scripts/lint_baseline.json ./... || fail cubelint

echo "==> recovery wall"
go test -race -count=1 -run 'Crash|Torn|Durable|WAL|Checkpoint|Rejoin|Batch|Group|Diverg' \
	./internal/wal ./internal/recovery ./internal/shard || fail "recovery wall"

echo "==> loadgen smoke"
smoke=$(mktemp)
if ! ./scripts/loadgen.sh "$smoke" 64 1s; then
	rm -f "$smoke"
	fail "loadgen smoke"
fi
rm -f "$smoke"

echo "==> go test -race"
go test -race ./... || fail "go test -race"

echo ""
echo "verify: all stages passed"
