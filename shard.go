package parcube

import (
	"fmt"

	"parcube/internal/agg"
	"parcube/internal/nd"
)

// This file is the shardable facade: the exports internal/shard (and any
// external sharding layer) needs to split a dataset into block sub-cubes
// and to merge their query results cell-exactly.

// Aggregator returns the operator the cube was built with. A sharded
// serving tier needs it to combine partial aggregates from block
// sub-cubes: every Aggregator here is associative and commutative, so
// element-wise combination of per-shard tables reproduces the unsharded
// cube exactly.
func (c *Cube) Aggregator() Aggregator {
	switch c.op {
	case agg.Count:
		return Count
	case agg.Max:
		return Max
	case agg.Min:
		return Min
	default:
		return Sum
	}
}

// Shard returns a new dataset over the same schema containing exactly the
// facts whose coordinates lie in the half-open box [lo, hi) per dimension,
// at their original global coordinates. Sharding the fact table this way
// and building one cube per block is lossless: because facts partition
// disjointly across blocks and all aggregators are associative and
// commutative, combining the blocks' group-by tables element-wise equals
// the unsharded cube.
//
// Shard freezes the dataset (like Build), so it can be called repeatedly
// to carve every block of a plan out of one loaded fact table.
func (d *Dataset) Shard(lo, hi []int) (*Dataset, error) {
	n := d.schema.Dims()
	if len(lo) != n || len(hi) != n {
		return nil, fmt.Errorf("parcube: shard bounds rank %d/%d for %d dimensions", len(lo), len(hi), n)
	}
	for i := 0; i < n; i++ {
		if lo[i] < 0 || hi[i] > d.schema.shape[i] || lo[i] >= hi[i] {
			return nil, fmt.Errorf("parcube: shard bounds [%d:%d) invalid for dimension %q of size %d",
				lo[i], hi[i], d.schema.names[i], d.schema.shape[i])
		}
	}
	block := nd.NewBlock(lo, hi)
	sub := NewDataset(d.schema)
	var addErr error
	d.freeze().Iter(func(coords []int, v float64) {
		if addErr != nil || !block.Contains(coords) {
			return
		}
		addErr = sub.Add(v, coords...)
	})
	if addErr != nil {
		return nil, addErr
	}
	return sub, nil
}
