package parcube

import (
	"math/rand"
	"testing"
)

// TestDatasetShardPartition checks the facade contract sharding relies
// on: carving a dataset into disjoint blocks and combining the block
// cubes' tables element-wise reproduces the unsharded cube exactly.
func TestDatasetShardPartition(t *testing.T) {
	schema, err := NewSchema(Dim{Name: "a", Size: 8}, Dim{Name: "b", Size: 6})
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDataset(schema)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		if err := ds.Add(float64(rng.Intn(9)+1), rng.Intn(8), rng.Intn(6)); err != nil {
			t.Fatal(err)
		}
	}
	whole, _, err := Build(ds)
	if err != nil {
		t.Fatal(err)
	}

	left, err := ds.Shard([]int{0, 0}, []int{4, 6})
	if err != nil {
		t.Fatal(err)
	}
	right, err := ds.Shard([]int{4, 0}, []int{8, 6})
	if err != nil {
		t.Fatal(err)
	}
	if left.Cells()+right.Cells() != ds.Cells() {
		t.Fatalf("blocks do not partition the facts: %d + %d != %d",
			left.Cells(), right.Cells(), ds.Cells())
	}

	lc, _, err := Build(left)
	if err != nil {
		t.Fatal(err)
	}
	rc, _, err := Build(right)
	if err != nil {
		t.Fatal(err)
	}
	for _, dims := range [][]string{nil, {"a"}, {"b"}, {"a", "b"}} {
		want, err := whole.GroupBy(dims...)
		if err != nil {
			t.Fatal(err)
		}
		lt, err := lc.GroupBy(dims...)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := rc.GroupBy(dims...)
		if err != nil {
			t.Fatal(err)
		}
		shape := want.Shape()
		coords := make([]int, len(shape))
		for off := 0; off < want.Size(); off++ {
			rem := off
			for i := len(shape) - 1; i >= 0; i-- {
				coords[i] = rem % shape[i]
				rem /= shape[i]
			}
			if got := lt.At(coords...) + rt.At(coords...); got != want.At(coords...) {
				t.Fatalf("group-by %v cell %v: %v + %v != %v",
					dims, coords, lt.At(coords...), rt.At(coords...), want.At(coords...))
			}
		}
	}
}

func TestDatasetShardValidation(t *testing.T) {
	schema, err := NewSchema(Dim{Name: "a", Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDataset(schema)
	if err := ds.Add(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Shard([]int{0, 0}, []int{4, 4}); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if _, err := ds.Shard([]int{2}, []int{2}); err == nil {
		t.Fatal("empty block accepted")
	}
	if _, err := ds.Shard([]int{0}, []int{5}); err == nil {
		t.Fatal("out-of-range block accepted")
	}
}

func TestCubeAggregator(t *testing.T) {
	schema, err := NewSchema(Dim{Name: "a", Size: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Aggregator{Sum, Count, Max, Min} {
		ds := NewDataset(schema)
		if err := ds.Add(3, 1); err != nil {
			t.Fatal(err)
		}
		cube, _, err := Build(ds, WithAggregator(a))
		if err != nil {
			t.Fatal(err)
		}
		if cube.Aggregator() != a {
			t.Fatalf("Aggregator() = %v, want %v", cube.Aggregator(), a)
		}
	}
}

// TestBuildEmptyShard makes sure a block with no facts still builds a
// servable cube — shard nodes for sparse corners of the array hit this.
func TestBuildEmptyShard(t *testing.T) {
	schema, err := NewSchema(Dim{Name: "a", Size: 4}, Dim{Name: "b", Size: 3})
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDataset(schema)
	if err := ds.Add(5, 0, 0); err != nil {
		t.Fatal(err)
	}
	empty, err := ds.Shard([]int{2, 0}, []int{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	cube, _, err := Build(empty)
	if err != nil {
		t.Fatal(err)
	}
	if cube.Total() != 0 {
		t.Fatalf("empty shard total = %v", cube.Total())
	}
	tbl, err := cube.GroupBy("a")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.At(0) != 0 || tbl.At(3) != 0 {
		t.Fatalf("empty shard group-by = %v %v", tbl.At(0), tbl.At(3))
	}
}
