package parcube

import (
	"errors"
	"fmt"

	"parcube/internal/agg"
	"parcube/internal/array"
	"parcube/internal/lattice"
	"parcube/internal/seq"
)

// ErrOverlappingDelta reports a Count/Max/Min delta touching a cell that
// already holds a fact: the old contribution cannot be retracted from a
// max/min/count without a rebuild, so Update rejects the delta. The
// error is typed so callers — the shard WAL apply path above all — can
// branch on it with errors.Is and refuse to log a delta that will never
// apply, instead of string-matching a message.
var ErrOverlappingDelta = errors.New("parcube: delta overlaps previously populated cells")

// UpdateStats reports an incremental cube maintenance step.
type UpdateStats struct {
	// DeltaCells is the number of distinct cells in the applied delta.
	DeltaCells int
	// Updates is the number of aggregation updates performed for the
	// delta sub-cube (orders of magnitude below a full rebuild when the
	// delta is small).
	Updates int64
}

// Update applies newly arrived facts to an existing cube without
// rebuilding it: a sub-cube is constructed from the delta alone (one pass,
// aggregation tree) and combined into every stored group-by.
//
// This is algebraically exact for Sum and for Count/Max/Min whenever the
// delta touches only cells that were previously empty; for those operators
// Update verifies disjointness and rejects overlapping deltas, because a
// changed cell's old contribution cannot be retracted from a max/min/count
// without a rebuild.
func (c *Cube) Update(delta *Dataset) (*UpdateStats, error) {
	if delta.schema.Dims() != c.schema.Dims() {
		return nil, fmt.Errorf("parcube: delta schema has %d dimensions, cube has %d",
			delta.schema.Dims(), c.schema.Dims())
	}
	for i, name := range c.schema.names {
		if delta.schema.names[i] != name || delta.schema.shape[i] != c.schema.shape[i] {
			return nil, fmt.Errorf("parcube: delta schema differs at dimension %d", i)
		}
	}
	deltaSparse := delta.freeze()
	if deltaSparse.NNZ() == 0 {
		return &UpdateStats{}, nil
	}

	if c.op != agg.Sum {
		overlap := false
		deltaSparse.Iter(func(coords []int, _ float64) {
			if !overlap && c.input.At(coords...) != 0 {
				overlap = true
			}
		})
		if overlap {
			return nil, fmt.Errorf("%w: %v cubes only support deltas on previously empty cells; rebuild instead", ErrOverlappingDelta, c.op)
		}
	}

	res, err := seq.Build(deltaSparse, seq.Options{Op: c.op})
	if err != nil {
		return nil, err
	}
	for mask := lattice.DimSet(0); mask < lattice.Full(c.schema.Dims()); mask++ {
		existing, ok := c.store.Get(mask)
		if !ok {
			return nil, fmt.Errorf("parcube: group-by %b missing from cube", mask)
		}
		part, ok := res.Cube.Get(mask)
		if !ok {
			return nil, fmt.Errorf("parcube: group-by %b missing from delta", mask)
		}
		existing.Combine(part, c.op)
	}
	// Merge the delta into the stored input so full-mask queries stay
	// consistent.
	merged, err := mergeSparse(c.input, deltaSparse)
	if err != nil {
		return nil, err
	}
	c.input = merged
	return &UpdateStats{DeltaCells: deltaSparse.NNZ(), Updates: res.Stats.Updates}, nil
}

// mergeSparse sums two sparse arrays cell-wise (fact-table semantics).
func mergeSparse(a, b *array.Sparse) (*array.Sparse, error) {
	builder, err := array.NewSparseBuilder(a.Shape(), nil)
	if err != nil {
		return nil, err
	}
	var addErr error
	add := func(coords []int, v float64) {
		if addErr == nil {
			addErr = builder.Add(coords, v)
		}
	}
	a.Iter(add)
	b.Iter(add)
	if addErr != nil {
		return nil, addErr
	}
	return builder.Build(), nil
}
