package parcube

import (
	"errors"
	"math/rand"
	"testing"
)

func TestUpdateMatchesRebuild(t *testing.T) {
	base := retailDataset(t, 30, 200)
	cube, _, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}

	// Apply three delta batches, then compare against a from-scratch cube
	// over the union of all facts.
	all := retailDataset(t, 30, 200) // same base facts
	rng := rand.New(rand.NewSource(31))
	for batch := 0; batch < 3; batch++ {
		delta := NewDataset(retailSchema(t))
		for i := 0; i < 50; i++ {
			v := float64(rng.Intn(20) + 1)
			it, br, tm := rng.Intn(8), rng.Intn(6), rng.Intn(4)
			if err := delta.Add(v, it, br, tm); err != nil {
				t.Fatal(err)
			}
			if err := all.Add(v, it, br, tm); err != nil {
				t.Fatal(err)
			}
		}
		stats, err := cube.Update(delta)
		if err != nil {
			t.Fatal(err)
		}
		if stats.DeltaCells <= 0 || stats.Updates <= 0 {
			t.Fatalf("stats = %+v", stats)
		}
	}

	want, _, err := Build(all)
	if err != nil {
		t.Fatal(err)
	}
	for _, names := range [][]string{{}, {"item"}, {"branch", "time"}, {"item", "branch", "time"}} {
		got, err := cube.GroupBy(names...)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := want.GroupBy(names...)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < got.Size(); i++ {
			if got.data.Data()[i] != ref.data.Data()[i] {
				t.Fatalf("group-by %v diverged after updates", names)
			}
		}
	}
}

func TestUpdateEmptyDeltaIsNoOp(t *testing.T) {
	cube, _, err := Build(retailDataset(t, 32, 100))
	if err != nil {
		t.Fatal(err)
	}
	before := cube.Total()
	stats, err := cube.Update(NewDataset(retailSchema(t)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeltaCells != 0 || cube.Total() != before {
		t.Fatalf("empty delta changed the cube")
	}
}

func TestUpdateRejectsSchemaMismatch(t *testing.T) {
	cube, _, err := Build(retailDataset(t, 33, 50))
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewSchema(Dim{Name: "x", Size: 8}, Dim{Name: "y", Size: 6}, Dim{Name: "z", Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cube.Update(NewDataset(other)); err == nil {
		t.Fatal("mismatched schema accepted")
	}
	short, _ := NewSchema(Dim{Name: "item", Size: 8})
	if _, err := cube.Update(NewDataset(short)); err == nil {
		t.Fatal("short schema accepted")
	}
}

func TestUpdateMaxDisjointOK(t *testing.T) {
	ds := NewDataset(retailSchema(t))
	_ = ds.Add(5, 0, 0, 0)
	cube, _, err := Build(ds, WithAggregator(Max))
	if err != nil {
		t.Fatal(err)
	}
	delta := NewDataset(retailSchema(t))
	_ = delta.Add(9, 1, 1, 1) // previously empty cell
	if _, err := cube.Update(delta); err != nil {
		t.Fatal(err)
	}
	byItem, _ := cube.GroupBy("item")
	if byItem.At(0) != 5 || byItem.At(1) != 9 {
		t.Fatalf("max after update = %v, %v", byItem.At(0), byItem.At(1))
	}
}

func TestUpdateMaxOverlapRejected(t *testing.T) {
	ds := NewDataset(retailSchema(t))
	_ = ds.Add(5, 0, 0, 0)
	cube, _, err := Build(ds, WithAggregator(Max))
	if err != nil {
		t.Fatal(err)
	}
	delta := NewDataset(retailSchema(t))
	_ = delta.Add(3, 0, 0, 0) // touches an occupied cell
	_, err = cube.Update(delta)
	if err == nil {
		t.Fatal("overlapping max delta accepted")
	}
	// The rejection is typed, so the WAL apply path can branch on it.
	if !errors.Is(err, ErrOverlappingDelta) {
		t.Fatalf("overlap rejection = %v, want errors.Is(_, ErrOverlappingDelta)", err)
	}
}

func TestUpdateSumOverlapAllowed(t *testing.T) {
	ds := NewDataset(retailSchema(t))
	_ = ds.Add(5, 0, 0, 0)
	cube, _, err := Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	delta := NewDataset(retailSchema(t))
	_ = delta.Add(3, 0, 0, 0)
	if _, err := cube.Update(delta); err != nil {
		t.Fatal(err)
	}
	if cube.Total() != 8 {
		t.Fatalf("total = %v", cube.Total())
	}
	// The merged input answers full-mask queries consistently.
	full, err := cube.GroupBy("item", "branch", "time")
	if err != nil {
		t.Fatal(err)
	}
	if full.At(0, 0, 0) != 8 {
		t.Fatalf("merged cell = %v", full.At(0, 0, 0))
	}
}
